package check

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// faultSeeds returns the fault-injection seed matrix: QOCO_FAULT_SEED (a
// comma-separated list) when set — the CI disk-torture job runs one leg per
// seed list — otherwise a fixed default matrix (the same convention as
// internal/resilience).
func faultSeeds(t *testing.T) []int64 {
	env := os.Getenv("QOCO_FAULT_SEED")
	if env == "" {
		return []int64{1, 7, 42}
	}
	var seeds []int64
	for _, part := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("bad QOCO_FAULT_SEED entry %q: %v", part, err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// tortureWidth scales the sweeps: QOCO_DISK_TORTURE=long (the nightly CI
// leg) multiplies instance counts by 4 and removes the per-phase injection
// sampling cap.
func tortureWidth(n int) (instances, maxPoints int) {
	if os.Getenv("QOCO_DISK_TORTURE") == "long" {
		return n * 4, 0
	}
	return n, 8
}

// TestDiskFaults: the storage fault-injection property over seeded
// instances — a fault at sampled file-operation points (crash, failure,
// short write, sticky fsync), seeded single-bit flips, and compaction
// crashes; acked facts always survive, corruption is always detected or
// harmless, recovery never invents facts.
func TestDiskFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweeps rebuild stores per injection point; skipped under -short")
	}
	n, maxPoints := tortureWidth(20)
	sweep(t, diskTrials(t, n), CheckDiskFaultsSampled(maxPoints))
}

// TestDiskFaultsSeeded runs the unsampled property — a fault at EVERY
// counted file operation, including every compaction op — for each seed in
// the QOCO_FAULT_SEED matrix. This is the CI disk-torture job's entry
// point; locally it runs the small default matrix.
func TestDiskFaultsSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("full-width fault injection; skipped under -short")
	}
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			ins := Generate(seed)
			if err := CheckDiskFaults(ins); err != nil {
				t.Fatalf("seed %d: %v\n\nreproduction:\n%s", seed, err, ins.Repro())
			}
		})
	}
}
