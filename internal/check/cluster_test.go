package check

import (
	"testing"
)

// TestClusterHandoffDifferential: the journal-handoff property behind
// cluster failover — for kill points K in {0, A/2, A} a primary crashes
// after exactly K durably-replicated answers and a successor recovers from
// the replica log, replaying exactly K answers, asking exactly A-K fresh
// ones, and converging to Q(DG). Each trial runs several full cleaning
// jobs, so the sweep is narrower than the pure in-memory properties.
func TestClusterHandoffDifferential(t *testing.T) {
	sweep(t, trials(t, 40), CheckClusterHandoff)
}
