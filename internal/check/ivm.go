package check

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/view"
)

// CheckIVMParity is the maintained-evaluation differential: it registers a
// view.Engine as the store's eval.Maintainer (exactly as the cleaner's
// incremental mode does), replays the instance's edit script, and after every
// edit requires the maintained evaluation paths to be indistinguishable from
// the naive reference:
//
//   - eval.Result on the maintained query and every union disjunct equals
//     NaiveResult, and the engine really served it (MaintainedResult ok)
//   - eval.Witnesses equals the cold (NoCache) enumeration byte for byte,
//     canonical order included — the hitting-set instances built from them
//     are then identical
//   - eval.AnswerHolds and empty-seed eval.Holds agree with their cold
//     counterparts
//   - eval.ResultUnion equals the deduplicated union of per-disjunct
//     NaiveResult
//
// It then goes out of band — an edit applied to the store without telling the
// engine — and requires the engine to decline (stale lookups) while
// evaluation falls back cold and stays correct, and finally that Ensure
// resyncs the engine back into serving.
func CheckIVMParity(ins *Instance) error {
	d := ins.D.Clone()
	engine := view.NewEngine(d)
	if err := engine.Ensure(ins.Query); err != nil {
		return fmt.Errorf("ivm parity: Ensure(%s): %w", ins.Query, err)
	}
	if ins.Union != nil {
		if err := engine.EnsureUnion(ins.Union); err != nil {
			return fmt.Errorf("ivm parity: EnsureUnion: %w", err)
		}
	}
	eval.SetMaintainer(d.ID(), engine)
	defer func() {
		eval.ClearMaintainer(d.ID(), engine)
		eval.InvalidateDB(d.ID())
	}()

	if err := ivmStep(ins, d, engine, "initial"); err != nil {
		return err
	}
	for ei, e := range ins.Edits {
		changed, err := d.Apply(e)
		if err != nil {
			return fmt.Errorf("ivm parity: edit %d (%v): %w", ei, e, err)
		}
		if changed {
			engine.Apply(e)
		}
		if err := ivmStep(ins, d, engine, fmt.Sprintf("after edit %d (%v)", ei, e)); err != nil {
			return err
		}
	}

	// Out-of-band edit: the store moves, the engine is not told. Maintained
	// lookups must decline (wrong generation) and evaluation must fall back
	// to the cold path — a stale engine serving old rows would surface as a
	// divergence from NaiveResult here.
	oob := outOfBandEdit(ins, d)
	if _, err := d.Apply(oob); err != nil {
		return fmt.Errorf("ivm parity: out-of-band edit: %w", err)
	}
	if _, ok := engine.MaintainedResult(d, ins.Query); ok {
		return fmt.Errorf("ivm parity: engine served a result after an unseen edit (generation not checked)")
	}
	if got, want := eval.Result(ins.Query, d), eval.NaiveResult(ins.Query, d); !tuplesEqual(got, want) {
		return fmt.Errorf("ivm parity: cold fallback after unseen edit: Result = %s, naive = %s",
			formatTuples(got), formatTuples(want))
	}

	// Ensure is the recovery point: it resyncs a stale engine, after which
	// maintained lookups serve again and still agree.
	if err := engine.Ensure(ins.Query); err != nil {
		return fmt.Errorf("ivm parity: re-Ensure: %w", err)
	}
	if !engine.Covers(ins.Query) {
		return fmt.Errorf("ivm parity: engine still stale after Ensure resync")
	}
	return ivmStep(ins, d, engine, "after resync")
}

// ivmStep runs the full maintained-vs-naive comparison at one point of the
// edit script.
func ivmStep(ins *Instance, d *db.Database, engine *view.Engine, step string) error {
	q := ins.Query
	naive := eval.NaiveResult(q, d)

	// The engine must actually be serving — a silent permanent fallback would
	// pass every value comparison while voiding the whole IVM mode.
	rows, ok := engine.MaintainedResult(d, q)
	if !ok {
		return fmt.Errorf("ivm parity (%s): engine declined MaintainedResult while in sync", step)
	}
	if !tuplesEqual(rows, naive) {
		return fmt.Errorf("ivm parity (%s): MaintainedResult = %s, naive = %s",
			step, formatTuples(rows), formatTuples(naive))
	}
	if got := eval.Result(q, d); !tuplesEqual(got, naive) {
		return fmt.Errorf("ivm parity (%s): Result = %s, naive = %s",
			step, formatTuples(got), formatTuples(naive))
	}

	// Witness parity: the maintained enumeration must be byte-identical to
	// the cold one (canonical witness-key order), for present answers and for
	// a perturbed absent probe.
	for _, t := range naive {
		got := eval.Witnesses(q, d, t)
		cold := eval.Witnesses(q, d, t, eval.NoCache())
		if gk, ck := witnessSetsKey(got), witnessSetsKey(cold); gk != ck {
			return fmt.Errorf("ivm parity (%s): Witnesses(%v) = %q, cold = %q", step, t, gk, ck)
		}
		if !eval.AnswerHolds(q, d, t) {
			return fmt.Errorf("ivm parity (%s): AnswerHolds rejects naive answer %v", step, t)
		}
		if len(t) > 0 {
			probe := append(db.Tuple(nil), t...)
			probe[0] += "\x00not-a-value"
			if eval.AnswerHolds(q, d, probe) != eval.AnswerHolds(q, d, probe, eval.NoCache()) {
				return fmt.Errorf("ivm parity (%s): AnswerHolds(%v) diverges from cold", step, probe)
			}
		}
	}

	// Empty-seed satisfiability: the cleaner's insertion-loop probe.
	if got, want := eval.Holds(q, d, nil), eval.Holds(q, d, nil, eval.NoCache()); got != want {
		return fmt.Errorf("ivm parity (%s): Holds = %v, cold = %v", step, got, want)
	}

	if ins.Union == nil {
		return nil
	}
	var want []db.Tuple
	seen := map[string]bool{}
	for _, dq := range ins.Union.Disjuncts {
		if got, naiveD := eval.Result(dq, d), eval.NaiveResult(dq, d); !tuplesEqual(got, naiveD) {
			return fmt.Errorf("ivm parity (%s): disjunct %s: Result = %s, naive = %s",
				step, dq, formatTuples(got), formatTuples(naiveD))
		}
		for _, t := range eval.NaiveResult(dq, d) {
			k := fmt.Sprintf("%q", []string(t))
			if !seen[k] {
				seen[k] = true
				want = append(want, t)
			}
		}
	}
	if got := eval.ResultUnion(ins.Union, d); !tuplesEqual(got, want) {
		return fmt.Errorf("ivm parity (%s): ResultUnion = %s, naive union = %s",
			step, formatTuples(got), formatTuples(want))
	}
	return nil
}

// outOfBandEdit picks a deterministic semantically-changing edit for the
// stale-engine leg: delete a present fact if the store has one, otherwise
// insert a fresh fact into the schema's first relation.
func outOfBandEdit(ins *Instance, d *db.Database) db.Edit {
	facts := sortedFacts(d)
	if len(facts) > 0 {
		return db.Deletion(facts[0])
	}
	name := ins.Schema.Names()[0]
	r, _ := ins.Schema.Relation(name)
	args := make([]string, r.Arity())
	for i := range args {
		args[i] = "Zoob"
	}
	return db.Insertion(db.NewFact(name, args...))
}
