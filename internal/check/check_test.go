package check

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/eval"
)

// trials returns the sweep width: the full 500+ seeded instances per
// property normally, a fast slice under -short so tier-1 stays quick.
func trials(t *testing.T, full int) int {
	if testing.Short() {
		if full > 60 {
			return 60
		}
		return full
	}
	return full
}

// sweep runs prop over seeded instances; on the first failure it shrinks
// the instance and fails with the minimized reproduction recipe.
func sweep(t *testing.T, n int, prop Property) {
	t.Helper()
	for seed := int64(1); seed <= int64(n); seed++ {
		ins := Generate(seed)
		if err := prop(ins); err != nil {
			min := Shrink(ins, prop)
			t.Fatalf("seed %d: %v\n\nminimized reproduction:\n%s", seed, err, min.Repro())
		}
	}
}

// TestGeneratedInstancesValid: every generated query and union validates
// against its schema and round-trips through the Datalog printer/parser —
// the generator feeds all other properties, so it must produce well-formed
// instances for every seed.
func TestGeneratedInstancesValid(t *testing.T) {
	sweep(t, trials(t, 2000), func(ins *Instance) error {
		if err := ins.Query.Validate(ins.Schema); err != nil {
			return err
		}
		if err := ins.Union.Validate(ins.Schema); err != nil {
			return err
		}
		return checkQueryRoundTrip(ins)
	})
}

// TestEvalParity: the optimized evaluator (indexed, cached, parallel)
// agrees with the naive reference on every generated instance, including
// after cache-warming and in-place edits.
func TestEvalParity(t *testing.T) {
	sweep(t, trials(t, 600), CheckEvalParity)
}

// TestViewParity: incrementally maintained views (flat and
// witness-tracking) stay identical to refreshed-from-scratch references
// after every edit of every generated script, including union disjuncts and
// negated-atom queries.
func TestViewParity(t *testing.T) {
	sweep(t, trials(t, 500), CheckViewParity)
}

// TestIVMParity: with a view.Engine registered as the store's maintainer,
// every maintained evaluation path (Result, Witnesses, AnswerHolds, Holds,
// ResultUnion) is byte-identical to the naive reference at every step of the
// edit script, and out-of-band edits force a correct cold fallback.
func TestIVMParity(t *testing.T) {
	sweep(t, trials(t, 500), CheckIVMParity)
}

// TestCleanerConvergence: the end-to-end cleaner with a perfect oracle
// reaches Q(D') = Q(DG) with only distance-reducing edits.
func TestCleanerConvergence(t *testing.T) {
	sweep(t, trials(t, 500), CheckCleaner)
}

// TestWALReplayDifferential: journaled runs, truncated journals, and
// corrupted journals behave exactly like direct edit application.
func TestWALReplayDifferential(t *testing.T) {
	sweep(t, trials(t, 500), CheckWALReplay)
}

// TestHittingDifferential: greedy, exact, and Theorem 4.5 unique-minimal
// detection agree with brute-force subset enumeration on seeded random set
// systems.
func TestHittingDifferential(t *testing.T) {
	n := trials(t, 800)
	for seed := int64(1); seed <= int64(n); seed++ {
		sets := GenerateSetSystem(seed)
		if err := CheckHittingSets(sets); err != nil {
			min := ShrinkSets(sets, CheckHittingSets)
			t.Fatalf("seed %d: %v\n\nminimized set system: %v", seed, err, min)
		}
	}
}

// TestHittingDegenerate pins the satellite's degenerate inputs explicitly:
// empty systems, duplicate sets, protected-by-construction singletons, and
// systems whose minimal hitting sets tie.
func TestHittingDegenerate(t *testing.T) {
	cases := [][][]string{
		{},                                   // empty system: empty set hits vacuously
		{{"a"}},                              // one singleton
		{{"a"}, {"a"}},                       // duplicate singleton sets
		{{"a", "b"}, {"a", "b"}},             // duplicate non-singletons: two minimal sets
		{{"a"}, {"b"}, {"a", "b"}},           // singletons dominate the third set
		{{"a", "a", "a"}},                    // duplicates within one set
		{{"a"}, {"a", "b"}, {"b"}},           // singleton union is the unique minimal
		{{"a", "b"}, {"b", "c"}, {"c", "a"}}, // 3-cycle: three minimal 2-sets
	}
	for i, sets := range cases {
		if err := CheckHittingSets(sets); err != nil {
			t.Errorf("degenerate case %d (%v): %v", i, sets, err)
		}
	}
}

// TestShrinkMinimizes: the minimizer actually shrinks — a property that
// fails whenever a marker fact is present must reduce to (nearly) just the
// marker.
func TestShrinkMinimizes(t *testing.T) {
	ins := Generate(42)
	marker := db.NewFact(ins.D.Schema().Names()[0], make([]string, func() int {
		r, _ := ins.D.Schema().Relation(ins.D.Schema().Names()[0])
		return r.Arity()
	}())...)
	ins.D.InsertFact(marker)
	prop := func(c *Instance) error {
		if c.D.Has(marker) {
			return errTest
		}
		return nil
	}
	min := Shrink(ins, prop)
	if !min.D.Has(marker) {
		t.Fatal("shrinking lost the failure-inducing fact")
	}
	if min.D.Len() != 1 {
		t.Errorf("shrunk D has %d facts, want 1:\n%s", min.D.Len(), min.Repro())
	}
	if min.DG.Len() != 0 {
		t.Errorf("shrunk DG has %d facts, want 0", min.DG.Len())
	}
	if len(min.Edits) != 0 {
		t.Errorf("shrunk instance kept %d edits, want 0", len(min.Edits))
	}
	if min.Seed != ins.Seed {
		t.Errorf("shrinking changed the seed: %d -> %d", ins.Seed, min.Seed)
	}
	if Shrink(Generate(7), prop) == nil {
		t.Error("Shrink on a passing instance returned nil")
	}
}

// TestReproIsSelfContained: the failure report names the seed and renders
// query, databases, and edits.
func TestReproIsSelfContained(t *testing.T) {
	ins := Generate(99)
	r := ins.Repro()
	for _, want := range []string{"seed: 99", "schema:", "query:", "DG", "D (dirty)"} {
		if !contains(r, want) {
			t.Errorf("Repro missing %q:\n%s", want, r)
		}
	}
}

// checkQueryRoundTrip: generated queries survive print → parse → print,
// tying the generator into the parser round-trip property.
func checkQueryRoundTrip(ins *Instance) error {
	if err := roundTripQuery(ins.Query); err != nil {
		return err
	}
	return roundTripUnion(ins.Union)
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "marker present" }

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// Keep the eval cache in its default (enabled) state even if another test
// in the package toggles it.
func TestMain(m *testing.M) {
	eval.SetCache(true)
	m.Run()
}
