package check

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/hitting"
)

// GenerateSetSystem builds a seeded random set system as raw sets: up to 7
// sets of 1-4 elements over a universe of at most 8, with duplicate sets,
// singletons, and subset relations all likely. Small universes keep the
// brute-force reference (subset enumeration) exact and cheap.
func GenerateSetSystem(seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	universe := make([]string, 2+rng.Intn(7))
	for i := range universe {
		universe[i] = fmt.Sprintf("e%d", i)
	}
	sets := make([][]string, rng.Intn(8))
	for i := range sets {
		size := 1 + rng.Intn(4)
		s := make([]string, size)
		for j := range s {
			s[j] = universe[rng.Intn(len(universe))] // duplicates within a set allowed
		}
		sets[i] = s
	}
	// Occasionally duplicate a whole set verbatim.
	if len(sets) > 0 && rng.Intn(3) == 0 {
		sets = append(sets, append([]string(nil), sets[rng.Intn(len(sets))]...))
	}
	return sets
}

// CheckHittingSets cross-checks every hitting-set path on one set system
// against brute-force subset enumeration:
//
//   - Greedy returns a valid hitting set
//   - ExactMinimum returns a valid, minimal hitting set no larger than
//     Greedy's and exactly as small as the brute-force minimum
//   - UniqueMinimal agrees with brute-force enumeration of all minimal
//     hitting sets (Theorem 4.5's singleton criterion vs ground truth)
//   - MostFrequent returns a maximally frequent element
func CheckHittingSets(sets [][]string) error {
	ss := hitting.NewSetSystem(sets...)
	universe := ss.Elements()
	if len(universe) > 16 {
		return fmt.Errorf("hitting: universe %d too large for brute force", len(universe))
	}

	greedy := ss.Greedy()
	if !ss.IsHittingSet(greedy) {
		return fmt.Errorf("hitting: Greedy() = %v is not a hitting set of %v", greedy, sets)
	}
	exact := ss.ExactMinimum()
	if !ss.IsHittingSet(exact) {
		return fmt.Errorf("hitting: ExactMinimum() = %v is not a hitting set of %v", exact, sets)
	}
	if !ss.IsMinimalHittingSet(exact) && !(len(exact) == 0 && ss.Empty()) {
		return fmt.Errorf("hitting: ExactMinimum() = %v is not minimal for %v", exact, sets)
	}
	if len(exact) > len(greedy) {
		return fmt.Errorf("hitting: exact %v larger than greedy %v for %v", exact, greedy, sets)
	}

	best, minimal := bruteForceHitting(ss, universe)
	if len(exact) != best {
		return fmt.Errorf("hitting: ExactMinimum size %d, brute force %d for %v", len(exact), best, sets)
	}
	um, unique := ss.UniqueMinimal()
	if unique != (len(minimal) == 1) {
		return fmt.Errorf("hitting: UniqueMinimal reports %v but %d minimal hitting sets exist for %v: %v",
			unique, len(minimal), sets, minimal)
	}
	if unique && len(minimal) == 1 {
		want := append([]string(nil), minimal[0]...)
		got := append([]string(nil), um...)
		sort.Strings(want)
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			return fmt.Errorf("hitting: UniqueMinimal = %v, brute force unique = %v for %v", um, want, sets)
		}
	}

	if !ss.Empty() {
		freq := ss.Frequencies()
		max := 0
		for _, n := range freq {
			if n > max {
				max = n
			}
		}
		mf := ss.MostFrequent(rand.New(rand.NewSource(1)))
		if freq[mf] != max {
			return fmt.Errorf("hitting: MostFrequent = %q with frequency %d, max is %d (%v)", mf, freq[mf], max, sets)
		}
	}
	return nil
}

// bruteForceHitting enumerates every subset of the universe and returns the
// minimum hitting-set size plus the list of all minimal hitting sets.
func bruteForceHitting(ss *hitting.SetSystem, universe []string) (best int, minimal [][]string) {
	n := len(universe)
	best = -1
	for mask := 0; mask < 1<<n; mask++ {
		var h []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				h = append(h, universe[i])
			}
		}
		if !ss.IsHittingSet(h) {
			continue
		}
		if best < 0 || len(h) < best {
			best = len(h)
		}
		if ss.IsMinimalHittingSet(h) || (len(h) == 0 && ss.Empty()) {
			minimal = append(minimal, h)
		}
	}
	if best < 0 {
		best = 0 // unreachable for non-empty sets over their own universe
	}
	return best, minimal
}

// ShrinkSets greedily minimizes a failing set system: it repeatedly tries
// dropping whole sets, then individual elements, keeping any candidate on
// which the property still fails.
func ShrinkSets(sets [][]string, prop func([][]string) error) [][]string {
	fails := func(c [][]string) bool { return prop(c) != nil }
	if !fails(sets) {
		return sets
	}
	cur := append([][]string(nil), sets...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := append(append([][]string(nil), cur[:i]...), cur[i+1:]...)
			if fails(cand) {
				cur, changed = cand, true
				i--
			}
		}
		for i := 0; i < len(cur); i++ {
			for j := 0; j < len(cur[i]); j++ {
				if len(cur[i]) == 1 {
					continue
				}
				cand := append([][]string(nil), cur...)
				row := append([]string(nil), cur[i]...)
				cand[i] = append(row[:j], row[j+1:]...)
				if fails(cand) {
					cur, changed = cand, true
					j--
				}
			}
		}
	}
	return cur
}
