package check

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/db"
	"repro/internal/faultfs"
)

// CheckDiskFaults is the storage fault-injection property: it replays the
// instance's edit script against the disk store while injecting a fault at
// every counted file operation — whole-op failures, short writes, torn
// (crash) writes, sticky fsync failures — and asserts the durability
// contract after each one:
//
//   - every fact state acknowledged by a successful Sync and untouched
//     afterwards survives the crash and reopen
//   - recovery never invents facts: everything recovered was inserted at
//     some point of the script
//   - the recovered store resumes: applying the diff to the mirror state
//     makes it exactly equal, and a clean close/reopen is exact
//
// A second phase flips single bits in the store's files directly and
// asserts detection: the reopen either fails with a typed *db.CorruptError
// (and keeps failing — the quarantine is sticky) or recovers to exactly
// the reference facts; it never silently serves a wrong subset.
//
// A third phase crashes a compaction at every counted file operation and
// asserts the store reopens parity-equal to its uncompacted reference, and
// that a clean compaction strictly shrinks the segment bytes it rewrites.
func CheckDiskFaults(ins *Instance) error { return checkDiskFaults(ins, 0) }

// CheckDiskFaultsSampled bounds the per-phase injection points to at most
// n (spread across the op range) so wide sweeps stay affordable; the
// seeded torture tests run the unsampled property.
func CheckDiskFaultsSampled(n int) Property {
	return func(ins *Instance) error { return checkDiskFaults(ins, n) }
}

// faultScript builds the deterministic edit script the fault phases replay:
// the dirty instance's facts, the instance's edit script, then seeded
// deletions of roughly half the surviving facts so compaction always has
// garbage to reclaim.
func faultScript(ins *Instance) []db.Edit {
	var script []db.Edit
	for _, f := range ins.D.Facts() {
		script = append(script, db.Insertion(f))
	}
	script = append(script, ins.Edits...)
	mirror := db.New(ins.Schema)
	for _, e := range script {
		mirror.Apply(e)
	}
	rng := rand.New(rand.NewSource(ins.Seed ^ 0xfa0175))
	for _, f := range mirror.Facts() {
		if rng.Intn(2) == 0 {
			script = append(script, db.Deletion(f))
		}
	}
	return script
}

// syncEvery derives the Sync cadence (1-4 edits) from the seed.
func syncEvery(seed int64) int { return 1 + int((seed>>3)%4) }

// samplePoints returns at most max injection points in [1, total], spread
// evenly with a seeded offset; max <= 0 means every point.
func samplePoints(seed, total int64, max int) []int64 {
	if total <= 0 {
		return nil
	}
	if max <= 0 || int64(max) >= total {
		pts := make([]int64, 0, total)
		for p := int64(1); p <= total; p++ {
			pts = append(pts, p)
		}
		return pts
	}
	rng := rand.New(rand.NewSource(seed ^ 0x9047))
	stride := total / int64(max)
	pts := make([]int64, 0, max)
	for i := 0; i < max; i++ {
		lo := int64(i) * stride
		pts = append(pts, 1+lo+rng.Int63n(stride))
	}
	return pts
}

func checkDiskFaults(ins *Instance, maxPoints int) error {
	script := faultScript(ins)
	if err := checkFaultSweep(ins, script, maxPoints); err != nil {
		return err
	}
	if err := checkBitFlips(ins, script, maxPoints); err != nil {
		return err
	}
	return checkCompactionCrashes(ins, script, maxPoints)
}

// scriptRun applies the script to ds with a Sync cadence, mirroring into a
// fresh in-memory database. It stops at the first store error (a fired
// fault) and returns the mirror, the state acknowledged by the last
// successful Sync, and the set of fact keys touched after that ack.
func scriptRun(ins *Instance, ds *db.DiskStore, script []db.Edit) (mirror, acked *db.Database, touched map[string]bool) {
	mirror = db.New(ins.Schema)
	acked = db.New(ins.Schema)
	touched = make(map[string]bool)
	every := syncEvery(ins.Seed)
	for i, e := range script {
		if _, err := ds.Apply(e); err != nil {
			return mirror, acked, touched
		}
		mirror.Apply(e)
		touched[e.Fact.Key()] = true
		if (i+1)%every == 0 {
			if err := ds.Sync(); err != nil {
				return mirror, acked, touched
			}
			acked = db.DeepCopy(mirror)
			touched = make(map[string]bool)
		}
	}
	if err := ds.Sync(); err != nil {
		return mirror, acked, touched
	}
	acked = db.DeepCopy(mirror)
	touched = make(map[string]bool)
	return mirror, acked, touched
}

// checkFaultSweep is phase A: one run per injection point, cycling the
// fault kinds, asserting acked durability, no invented facts, and resume.
func checkFaultSweep(ins *Instance, script []db.Edit, maxPoints int) error {
	// Dry run: count the ops a clean open + script performs.
	dryDir, err := os.MkdirTemp("", "check-faults-*")
	if err != nil {
		return fmt.Errorf("disk faults: temp dir: %w", err)
	}
	defer os.RemoveAll(dryDir)
	counter := faultfs.NewInjector(faultfs.OS())
	ds, err := db.OpenDisk(dryDir, ins.Schema, diskShardsFor(ins.Seed), db.WithFS(counter))
	if err != nil {
		return fmt.Errorf("disk faults: dry open: %w", err)
	}
	scriptRun(ins, ds, script)
	ds.Crash()
	total := counter.OpCount()

	kinds := []faultfs.Kind{faultfs.KindCrash, faultfs.KindFail, faultfs.KindShortWrite, faultfs.KindStickySync}
	for i, p := range samplePoints(ins.Seed, total, maxPoints) {
		kind := kinds[i%len(kinds)]
		if err := runFaultPoint(ins, script, faultfs.Fault{At: p, Kind: kind}); err != nil {
			return fmt.Errorf("disk faults: %v at op %d/%d: %w", kind, p, total, err)
		}
	}
	return nil
}

func runFaultPoint(ins *Instance, script []db.Edit, fault faultfs.Fault) error {
	dir, err := os.MkdirTemp("", "check-faults-*")
	if err != nil {
		return fmt.Errorf("temp dir: %w", err)
	}
	defer os.RemoveAll(dir)
	inj := faultfs.NewInjector(faultfs.OS(), fault)
	shards := diskShardsFor(ins.Seed)
	mirror, acked := db.New(ins.Schema), db.New(ins.Schema)
	touched := map[string]bool{}
	ds, err := db.OpenDisk(dir, ins.Schema, shards, db.WithFS(inj))
	if err != nil {
		// The fault hit the open itself: nothing was acknowledged. The
		// injected open must not have poisoned the directory for a healthy
		// process — that is asserted by the clean reopen below.
		if errors.Is(err, db.ErrCorrupt) {
			return fmt.Errorf("injected open reported corruption: %v", err)
		}
	} else {
		mirror, acked, touched = scriptRun(ins, ds, script)
		ds.Crash()
	}

	re, err := db.OpenDisk(dir, ins.Schema, shards)
	if err != nil {
		return fmt.Errorf("clean reopen after fault: %w", err)
	}
	defer re.Close()
	// Acked durability: every fact state from the last successful Sync that
	// no later edit touched must be recovered exactly.
	for _, f := range acked.Facts() {
		if !touched[f.Key()] && !re.Has(f) {
			return fmt.Errorf("acked fact %v lost", f)
		}
	}
	for _, f := range re.Facts() {
		if !touched[f.Key()] && !acked.Has(f) && acked.Len() > 0 && !everInserted(script, f) {
			return fmt.Errorf("recovered fact %v neither acked nor touched", f)
		}
		// No invented facts, ever: everything recovered must have been
		// inserted by some script prefix.
		if !everInserted(script, f) {
			return fmt.Errorf("recovered fact %v was never inserted", f)
		}
	}
	// Resume: the recovered store accepts the diff back to the mirror state
	// and then matches it exactly, surviving a clean close/reopen.
	if _, err := re.ApplyAll(db.Diff(re, mirror)); err != nil {
		return fmt.Errorf("resuming after recovery: %w", err)
	}
	if !db.Equal(re, mirror) {
		return fmt.Errorf("resumed store differs from mirror (distance %d)", db.Distance(re, mirror))
	}
	if err := re.Sync(); err != nil {
		return fmt.Errorf("sync after resume: %w", err)
	}
	if err := re.Close(); err != nil {
		return fmt.Errorf("clean close after resume: %w", err)
	}
	re2, err := db.OpenDisk(dir, ins.Schema, shards)
	if err != nil {
		return fmt.Errorf("final reopen: %w", err)
	}
	defer re2.Close()
	if !db.Equal(re2, mirror) {
		return fmt.Errorf("final reopen differs from mirror (distance %d)", db.Distance(re2, mirror))
	}
	return nil
}

// checkBitFlips is phase B: flip single seeded bits in the store's files
// and assert corruption is always either detected (typed, sticky) or
// harmless (recovery equals the reference exactly) — never a silently
// wrong database.
func checkBitFlips(ins *Instance, script []db.Edit, maxPoints int) error {
	flips := 4
	if maxPoints > 0 && maxPoints < flips {
		flips = maxPoints
	}
	rng := rand.New(rand.NewSource(ins.Seed ^ 0xb17f11b))
	for i := 0; i < flips; i++ {
		if err := runBitFlip(ins, script, rng); err != nil {
			return fmt.Errorf("disk faults: bit flip %d: %w", i, err)
		}
	}
	return nil
}

func runBitFlip(ins *Instance, script []db.Edit, rng *rand.Rand) error {
	dir, err := os.MkdirTemp("", "check-flip-*")
	if err != nil {
		return fmt.Errorf("temp dir: %w", err)
	}
	defer os.RemoveAll(dir)
	shards := diskShardsFor(ins.Seed)
	ds, err := db.OpenDisk(dir, ins.Schema, shards)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	mirror, _, _ := scriptRun(ins, ds, script)
	if err := ds.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	// Pick a non-empty store file and flip one bit.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var candidates []string
	for _, e := range entries {
		if fi, err := e.Info(); err == nil && fi.Size() > 0 {
			candidates = append(candidates, e.Name())
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	name := candidates[rng.Intn(len(candidates))]
	path := filepath.Join(dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	bit := rng.Intn(len(raw) * 8)
	raw[bit/8] ^= 1 << (bit % 8)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}

	re, err := db.OpenDisk(dir, ins.Schema, shards)
	if err != nil {
		if errors.Is(err, db.ErrCorrupt) {
			// Detected: the quarantine must be sticky.
			if _, err2 := db.OpenDisk(dir, ins.Schema, shards); !errors.Is(err2, db.ErrCorrupt) {
				return fmt.Errorf("flip in %s at bit %d: quarantine not sticky (second open: %v)", name, bit, err2)
			}
			return nil
		}
		// A flipped version byte in pre-checksum metadata may read as a
		// future format — an explicit refusal, also acceptable.
		if strings.Contains(err.Error(), "newer than this binary") {
			return nil
		}
		return fmt.Errorf("flip in %s at bit %d: untyped open error: %w", name, bit, err)
	}
	defer re.Close()
	// Undetected: the flip must have been harmless (a torn tail in a commit
	// marker, say) — the facts must be exactly the reference's.
	if !db.Equal(re, mirror) {
		return fmt.Errorf("flip in %s at bit %d: silently wrong database (distance %d)",
			name, bit, db.Distance(re, mirror))
	}
	return nil
}

// checkCompactionCrashes is phase C: crash a compaction at every counted
// file operation; every outcome must reopen parity-equal to the
// uncompacted reference, and a clean compaction must strictly shrink the
// bytes of the shards it rewrites.
func checkCompactionCrashes(ins *Instance, script []db.Edit, maxPoints int) error {
	shards := diskShardsFor(ins.Seed)
	build := func() (string, *db.Database, error) {
		dir, err := os.MkdirTemp("", "check-compact-*")
		if err != nil {
			return "", nil, fmt.Errorf("temp dir: %w", err)
		}
		ds, err := db.OpenDisk(dir, ins.Schema, shards)
		if err != nil {
			os.RemoveAll(dir)
			return "", nil, fmt.Errorf("open: %w", err)
		}
		mirror, _, _ := scriptRun(ins, ds, script)
		if err := ds.Close(); err != nil {
			os.RemoveAll(dir)
			return "", nil, fmt.Errorf("close: %w", err)
		}
		return dir, mirror, nil
	}

	// Dry run: count the clean-open ops, then the compaction's own ops.
	dryDir, mirror, err := build()
	if err != nil {
		return fmt.Errorf("disk faults: compaction dry build: %w", err)
	}
	defer os.RemoveAll(dryDir)
	counter := faultfs.NewInjector(faultfs.OS())
	ds, err := db.OpenDisk(dryDir, ins.Schema, shards, db.WithFS(counter))
	if err != nil {
		return fmt.Errorf("disk faults: compaction dry open: %w", err)
	}
	openOps := counter.OpCount()
	dryRes, err := ds.Compact(0)
	if err != nil {
		return fmt.Errorf("disk faults: dry compaction: %w", err)
	}
	compactOps := counter.OpCount() - openOps
	ds.Close()

	for _, p := range samplePoints(ins.Seed, compactOps, maxPoints) {
		dir, _, err := build()
		if err != nil {
			return fmt.Errorf("disk faults: compaction build: %w", err)
		}
		err = func() error {
			defer os.RemoveAll(dir)
			inj := faultfs.NewInjector(faultfs.OS(),
				faultfs.Fault{At: openOps + p, Kind: faultfs.KindCrash})
			ds, err := db.OpenDisk(dir, ins.Schema, shards, db.WithFS(inj))
			if err != nil {
				return fmt.Errorf("open under injector: %w", err)
			}
			ds.Compact(0) // errors expected: the crash interrupts it
			ds.Crash()
			re, err := db.OpenDisk(dir, ins.Schema, shards)
			if err != nil {
				return fmt.Errorf("reopen after compaction crash: %w", err)
			}
			defer re.Close()
			if !db.Equal(re, mirror) {
				return fmt.Errorf("compaction crash lost facts (distance %d)", db.Distance(re, mirror))
			}
			return nil
		}()
		if err != nil {
			return fmt.Errorf("disk faults: crash at compaction op %d/%d: %w", p, compactOps, err)
		}
	}

	// Clean compaction: strictly fewer bytes on every rewritten shard, and
	// exact parity across a reopen.
	dir, _, err := build()
	if err != nil {
		return fmt.Errorf("disk faults: clean compaction build: %w", err)
	}
	defer os.RemoveAll(dir)
	cds, err := db.OpenDisk(dir, ins.Schema, shards)
	if err != nil {
		return fmt.Errorf("disk faults: clean compaction open: %w", err)
	}
	res, err := cds.Compact(0)
	if err != nil {
		cds.Close()
		return fmt.Errorf("disk faults: clean compaction: %w", err)
	}
	if res.ShardsCompacted != dryRes.ShardsCompacted {
		cds.Close()
		return fmt.Errorf("disk faults: compaction nondeterministic: %d shards vs %d in dry run",
			res.ShardsCompacted, dryRes.ShardsCompacted)
	}
	if res.ShardsCompacted > 0 && res.BytesAfter >= res.BytesBefore {
		cds.Close()
		return fmt.Errorf("disk faults: compaction did not shrink: %d -> %d bytes", res.BytesBefore, res.BytesAfter)
	}
	if !db.Equal(cds, mirror) {
		cds.Close()
		return fmt.Errorf("disk faults: compaction changed facts (distance %d)", db.Distance(cds, mirror))
	}
	if err := cds.Close(); err != nil {
		return fmt.Errorf("disk faults: close after compaction: %w", err)
	}
	re, err := db.OpenDisk(dir, ins.Schema, shards)
	if err != nil {
		return fmt.Errorf("disk faults: reopen after compaction: %w", err)
	}
	defer re.Close()
	if !db.Equal(re, mirror) {
		return fmt.Errorf("disk faults: post-compaction reopen differs (distance %d)", db.Distance(re, mirror))
	}
	return nil
}
