// Package check is the differential correctness harness: it generates
// seeded random QOCO instances (schemas, databases, CQ≠ and union queries,
// edit scripts), replays them through every optimized path and its naive
// reference — the indexed/cached/parallel evaluator vs NaiveResult, the
// incrementally maintained views and the IVM engine vs refresh-from-scratch
// and cold evaluation after every edit, the
// greedy hitting-set heuristics vs exact branch-and-bound vs brute-force
// subset enumeration, the end-to-end cleaner vs the ground truth it is
// supposed to converge to, and WAL journal replay vs direct edit
// application — and, when a property fails, shrinks the instance to a
// minimal counterexample with a re-runnable seed and Datalog rendering.
//
// Properties are plain functions from *Instance to error so the same code
// runs from `go test` sweeps, fuzz targets, and the minimizer. The parser
// and key-encoding fuzz targets live next to their packages (internal/cq,
// internal/wal, internal/server, internal/eval); this package holds the
// cross-package differential drivers. See docs/TESTING.md.
package check

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// Instance is one generated differential-test input: a schema, a ground
// truth DG, a dirty database D, a query (and a union embedding it), and an
// edit script. Every property consumes the parts it needs and ignores the
// rest, so one instance exercises several drivers.
type Instance struct {
	// Seed reproduces the instance: Generate(Seed) rebuilds it exactly.
	// Shrunk instances keep the seed of the original failure.
	Seed   int64
	Schema *schema.Schema
	// DG is the ground truth; D the dirty instance handed to the cleaner.
	DG *db.Database
	D  *db.Database
	// Query is a safe CQ≠ over Schema; Union embeds it with 0-2 more
	// disjuncts of the same head arity.
	Query *cq.Query
	Union *cq.Union
	// Edits is a random edit script (including deliberate no-ops) used by
	// the WAL-replay and cache-invalidation properties.
	Edits []db.Edit
}

// Clone deep-copies the instance so shrinking can mutate candidates freely.
func (ins *Instance) Clone() *Instance {
	c := &Instance{Seed: ins.Seed, Schema: ins.Schema}
	if ins.DG != nil {
		c.DG = ins.DG.Clone()
	}
	if ins.D != nil {
		c.D = ins.D.Clone()
	}
	if ins.Query != nil {
		c.Query = cloneQuery(ins.Query)
	}
	if ins.Union != nil {
		u := &cq.Union{}
		for _, q := range ins.Union.Disjuncts {
			u.Disjuncts = append(u.Disjuncts, cloneQuery(q))
		}
		c.Union = u
	}
	c.Edits = append([]db.Edit(nil), ins.Edits...)
	return c
}

func cloneQuery(q *cq.Query) *cq.Query {
	c := &cq.Query{Name: q.Name}
	c.Head = append([]cq.Term(nil), q.Head...)
	for _, a := range q.Atoms {
		c.Atoms = append(c.Atoms, cq.Atom{Rel: a.Rel, Args: append([]cq.Term(nil), a.Args...)})
	}
	c.Ineqs = append([]cq.Ineq(nil), q.Ineqs...)
	for _, a := range q.Negs {
		c.Negs = append(c.Negs, cq.Atom{Rel: a.Rel, Args: append([]cq.Term(nil), a.Args...)})
	}
	return c
}

// Repro renders the instance as a self-contained reproduction recipe:
// the seed to regenerate it, the schema, both databases as fact lists, the
// query and union in Datalog text, and the edit script. This is what a
// failing property prints after shrinking.
func (ins *Instance) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed: %d (check.Generate(%d))\n", ins.Seed, ins.Seed)
	if ins.Schema != nil {
		b.WriteString("schema:\n")
		for _, name := range ins.Schema.Names() {
			r, _ := ins.Schema.Relation(name)
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	writeDB := func(name string, d *db.Database) {
		if d == nil {
			return
		}
		fmt.Fprintf(&b, "%s (%d facts):\n", name, d.Len())
		for _, f := range sortedFacts(d) {
			fmt.Fprintf(&b, "  %v\n", f)
		}
	}
	writeDB("DG (ground truth)", ins.DG)
	writeDB("D (dirty)", ins.D)
	if ins.Query != nil {
		fmt.Fprintf(&b, "query: %s\n", ins.Query)
	}
	if ins.Union != nil && len(ins.Union.Disjuncts) > 1 {
		fmt.Fprintf(&b, "union: %s\n", ins.Union)
	}
	if len(ins.Edits) > 0 {
		fmt.Fprintf(&b, "edits (%d):\n", len(ins.Edits))
		for _, e := range ins.Edits {
			fmt.Fprintf(&b, "  %v\n", e)
		}
	}
	return b.String()
}

func sortedFacts(d *db.Database) []db.Fact {
	fs := d.Facts()
	sort.Slice(fs, func(i, j int) bool { return fs[i].Key() < fs[j].Key() })
	return fs
}

// Property is a differential check over one instance: nil means every
// compared path agreed, an error describes the divergence. Properties must
// not mutate the instance (clone the databases before editing) so the
// minimizer can re-run them on shared candidates.
type Property func(*Instance) error

// sortTuples canonicalizes a result set for comparison across evaluators
// whose enumeration orders differ.
func sortTuples(ts []db.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = strings.Join(t, "\x00")
	}
	sort.Strings(out)
	return out
}

// tuplesEqual compares two result sets as sets of tuples.
func tuplesEqual(a, b []db.Tuple) bool {
	as, bs := sortTuples(a), sortTuples(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// roundTripQuery asserts print → parse → print is the identity on a query;
// a generated query that fails this would silently weaken every property
// that serializes query text (journals, server payloads, repro recipes).
func roundTripQuery(q *cq.Query) error {
	text := q.String()
	q2, err := cq.Parse(text)
	if err != nil {
		return fmt.Errorf("round trip: Parse(%q): %w", text, err)
	}
	if !q2.Equal(q) {
		return fmt.Errorf("round trip changed the query: %q -> %q", text, q2)
	}
	return nil
}

// roundTripUnion is roundTripQuery for unions, exercising the splitTop
// quote handling with generated awkward constants.
func roundTripUnion(u *cq.Union) error {
	if u == nil {
		return nil
	}
	text := u.String()
	u2, err := cq.ParseUnion(text)
	if err != nil {
		return fmt.Errorf("union round trip: ParseUnion(%q): %w", text, err)
	}
	if !u2.Equal(u) {
		return fmt.Errorf("union round trip changed the union: %q -> %q", text, u2)
	}
	return nil
}

func formatTuples(ts []db.Tuple) string {
	ss := sortTuples(ts)
	for i, s := range ss {
		ss[i] = "(" + strings.ReplaceAll(s, "\x00", ",") + ")"
	}
	return "{" + strings.Join(ss, " ") + "}"
}
