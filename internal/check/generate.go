package check

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// Value pools. Constants start with an uppercase letter so they lex as
// constants unquoted; the awkward pool stresses the printer/parser round
// trip (quoting, escapes, lexer punctuation) through every layer that
// serializes query text or journal records.
var (
	genVars    = []string{"x", "y", "z", "w"}
	genConsts  = []string{"C0", "C1", "C2", "C3", "C4", "C5"}
	genAwkward = []string{"a;b", `a\`, "A:-B", "A.", "", "v w", "'"}
)

// Generate builds the instance for a seed. The same seed always yields the
// same instance, so a failure report's seed is a complete reproduction.
func Generate(seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	ins := &Instance{Seed: seed}

	// Schema: 2-3 relations, arity 1-3.
	nrel := 2 + rng.Intn(2)
	rels := make([]schema.Relation, nrel)
	for i := range rels {
		arity := 1 + rng.Intn(3)
		r := schema.Relation{Name: fmt.Sprintf("R%d", i)}
		for j := 0; j < arity; j++ {
			r.Attrs = append(r.Attrs, fmt.Sprintf("a%d", j))
		}
		rels[i] = r
	}
	ins.Schema = schema.New(rels...)

	value := func() string {
		if rng.Intn(12) == 0 {
			return genAwkward[rng.Intn(len(genAwkward))]
		}
		return genConsts[rng.Intn(len(genConsts))]
	}
	randFact := func() db.Fact {
		r := rels[rng.Intn(len(rels))]
		args := make([]string, r.Arity())
		for i := range args {
			args[i] = value()
		}
		return db.NewFact(r.Name, args...)
	}

	// Ground truth: a handful of facts per relation from a small pool so
	// joins and collisions actually happen.
	ins.DG = db.New(ins.Schema)
	for i, n := 0, rng.Intn(12); i < n; i++ {
		ins.DG.InsertFact(randFact())
	}

	// Dirty instance: drop some true facts, add some spurious ones.
	ins.D = ins.DG.Clone()
	for _, f := range ins.DG.Facts() {
		if rng.Intn(4) == 0 {
			ins.D.DeleteFact(f)
		}
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		ins.D.InsertFact(randFact())
	}

	// Query and union.
	ins.Query = genQuery(rng, rels, value)
	ins.Union = &cq.Union{Disjuncts: []*cq.Query{ins.Query}}
	for extra := rng.Intn(3); extra > 0; extra-- {
		q := genQuery(rng, rels, value)
		if q.Arity() == ins.Query.Arity() {
			ins.Union.Disjuncts = append(ins.Union.Disjuncts, q)
		}
	}

	// Edit script, including deliberate no-ops (re-inserting a present fact,
	// deleting an absent one) so generation-counter semantics are exercised.
	for i, n := 0, rng.Intn(10); i < n; i++ {
		f := randFact()
		if rng.Intn(2) == 0 {
			ins.Edits = append(ins.Edits, db.Insertion(f))
		} else {
			ins.Edits = append(ins.Edits, db.Deletion(f))
		}
	}
	return ins
}

// genQuery builds a random safe CQ≠ valid for the schema: every head,
// inequality, and negated-atom variable is bound by a positive atom, and
// head variables are distinct (the cq.Validate contract).
func genQuery(rng *rand.Rand, rels []schema.Relation, value func() string) *cq.Query {
	q := &cq.Query{}
	nAtoms := 1 + rng.Intn(3)
	for i := 0; i < nAtoms; i++ {
		r := rels[rng.Intn(len(rels))]
		atom := cq.Atom{Rel: r.Name}
		for j := 0; j < r.Arity(); j++ {
			if rng.Intn(4) == 0 {
				atom.Args = append(atom.Args, cq.Const(value()))
			} else {
				atom.Args = append(atom.Args, cq.Var(genVars[rng.Intn(len(genVars))]))
			}
		}
		q.Atoms = append(q.Atoms, atom)
	}
	bound := boundVars(q)
	if len(bound) == 0 {
		return q // boolean query over constants
	}
	// Head: a random subset of bound variables, each at most once.
	for _, v := range bound {
		if rng.Intn(2) == 0 {
			q.Head = append(q.Head, cq.Var(v))
		}
	}
	if len(q.Head) == 0 {
		q.Head = append(q.Head, cq.Var(bound[0]))
	}
	// 0-2 inequalities: var != var or var != const.
	for i, n := 0, rng.Intn(3); i < n; i++ {
		l := cq.Var(bound[rng.Intn(len(bound))])
		var r cq.Term
		if rng.Intn(3) == 0 {
			r = cq.Const(value())
		} else {
			r = cq.Var(bound[rng.Intn(len(bound))])
		}
		q.Ineqs = append(q.Ineqs, cq.Ineq{Left: l, Right: r})
	}
	// Optional safe negated atom: all variables already bound.
	if rng.Intn(3) == 0 {
		r := rels[rng.Intn(len(rels))]
		atom := cq.Atom{Rel: r.Name}
		for j := 0; j < r.Arity(); j++ {
			if rng.Intn(3) == 0 {
				atom.Args = append(atom.Args, cq.Const(value()))
			} else {
				atom.Args = append(atom.Args, cq.Var(bound[rng.Intn(len(bound))]))
			}
		}
		q.Negs = append(q.Negs, atom)
	}
	return q
}

// boundVars lists the variables bound by positive atoms, in genVars order
// for determinism.
func boundVars(q *cq.Query) []string {
	set := map[string]bool{}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar {
				set[t.Name] = true
			}
		}
	}
	var out []string
	for _, v := range genVars {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}
