package graph

import (
	"math/rand"
	"testing"
)

// cutWeight computes the weight of the cut induced by side directly.
func cutWeight(g *Graph, side []bool) int64 {
	var w int64
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if side[u] != side[v] {
				w += g.Weight(u, v)
			}
		}
	}
	return w
}

// bruteMinCut enumerates all proper 2-partitions.
func bruteMinCut(g *Graph) int64 {
	n := g.N()
	best := int64(-1)
	for mask := 1; mask < (1<<n)-1; mask++ {
		side := make([]bool, n)
		for i := 0; i < n; i++ {
			side[i] = mask&(1<<i) != 0
		}
		w := cutWeight(g, side)
		if best < 0 || w < best {
			best = w
		}
	}
	return best
}

func properSide(side []bool, n int) bool {
	trues := 0
	for _, b := range side {
		if b {
			trues++
		}
	}
	return trues > 0 && trues < n
}

func TestGlobalMinCutTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	w, side := g.GlobalMinCut()
	if w != 2 {
		t.Errorf("min cut = %d, want 2 (isolate vertex 2)", w)
	}
	if !properSide(side, 3) {
		t.Errorf("side %v not a proper partition", side)
	}
	if cutWeight(g, side) != w {
		t.Errorf("side weight %d != reported %d", cutWeight(g, side), w)
	}
}

func TestGlobalMinCutDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 7)
	w, side := g.GlobalMinCut()
	if w != 0 {
		t.Errorf("disconnected min cut = %d, want 0", w)
	}
	if side[0] != side[1] || side[2] != side[3] || side[0] == side[2] {
		t.Errorf("side %v should separate the components", side)
	}
}

func TestGlobalMinCutSmallGraphs(t *testing.T) {
	g := New(1)
	if w, side := g.GlobalMinCut(); w != 0 || side != nil {
		t.Errorf("single vertex: (%d, %v)", w, side)
	}
	g2 := New(2)
	g2.AddEdge(0, 1, 9)
	w, side := g2.GlobalMinCut()
	if w != 9 || !properSide(side, 2) {
		t.Errorf("two vertices: (%d, %v)", w, side)
	}
}

func TestGlobalMinCutAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(6)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) > 0 {
					g.AddEdge(u, v, int64(rng.Intn(10)))
				}
			}
		}
		want := bruteMinCut(g)
		got, side := g.GlobalMinCut()
		if got != want {
			t.Fatalf("trial %d (n=%d): GlobalMinCut = %d, brute force = %d", trial, n, got, want)
		}
		if !properSide(side, n) {
			t.Fatalf("trial %d: improper side %v", trial, side)
		}
		if cutWeight(g, side) != got {
			t.Fatalf("trial %d: side weight %d != reported %d", trial, cutWeight(g, side), got)
		}
	}
}

func TestMaxFlowSimple(t *testing.T) {
	// Path 0 -1- 2 with capacities 5 and 3: flow 3.
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Errorf("MaxFlow = %d, want 3", got)
	}
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Errorf("MaxFlow(s,s) = %d, want 0", got)
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 1)
	if got := g.MaxFlow(0, 3); got != 3 {
		t.Errorf("MaxFlow = %d, want 3", got)
	}
}

func TestMinCutSTMatchesMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(6)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) > 0 {
					g.AddEdge(u, v, int64(1+rng.Intn(9)))
				}
			}
		}
		s, tt := 0, n-1
		flow := g.MaxFlow(s, tt)
		cut, side := g.MinCutST(s, tt)
		if flow != cut {
			t.Fatalf("trial %d: max flow %d != min cut %d", trial, flow, cut)
		}
		if !side[s] || side[tt] {
			t.Fatalf("trial %d: side %v does not separate s and t", trial, side)
		}
		if cutWeight(g, side) != cut {
			t.Fatalf("trial %d: cut side weight %d != %d", trial, cutWeight(g, side), cut)
		}
	}
}

func TestMinCutSTPanicsOnSameVertex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MinCutST(s, s) did not panic")
		}
	}()
	New(2).MinCutST(1, 1)
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0, 5) // self-loop ignored
	if g.Weight(0, 0) != 0 {
		t.Errorf("self-loop stored")
	}
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3)
	if g.Weight(0, 1) != 5 || g.Weight(1, 0) != 5 {
		t.Errorf("parallel edges should accumulate: %d", g.Weight(0, 1))
	}
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 2, 1) },
		func() { g.AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid AddEdge did not panic")
				}
			}()
			fn()
		}()
	}
}
