// Package graph provides small weighted undirected graphs and the two cut
// algorithms the paper's query-directed split relies on (§5.2, citing
// Edmonds–Karp [20]): a Stoer–Wagner global minimum cut and an Edmonds–Karp
// maximum flow / s-t minimum cut. Graphs here are tiny (one vertex per query
// atom), so simple adjacency-matrix implementations are appropriate.
package graph

import "fmt"

// Graph is a weighted undirected graph over vertices 0..n-1. Parallel edges
// accumulate weight; self-loops are ignored for cut purposes.
type Graph struct {
	n int
	w [][]int64
}

// New creates a graph with n vertices and no edges.
func New(n int) *Graph {
	g := &Graph{n: n, w: make([][]int64, n)}
	for i := range g.w {
		g.w[i] = make([]int64, n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds weight w to the undirected edge {u, v}. Negative weights and
// out-of-range vertices panic: the query graph construction controls both.
func (g *Graph) AddEdge(u, v int, w int64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, g.n))
	}
	if w < 0 {
		panic("graph: negative edge weight")
	}
	if u == v {
		return
	}
	g.w[u][v] += w
	g.w[v][u] += w
}

// Weight returns the weight of edge {u, v} (0 if absent).
func (g *Graph) Weight(u, v int) int64 { return g.w[u][v] }

// GlobalMinCut computes a global minimum cut with the Stoer–Wagner
// algorithm. It returns the cut weight and a side assignment: side[v] is true
// for vertices in one (non-empty, proper) part. For n < 2 it returns (0, nil).
// Disconnected graphs yield weight 0 with a connected-component side.
func (g *Graph) GlobalMinCut() (int64, []bool) {
	if g.n < 2 {
		return 0, nil
	}
	// Work on a copy: vertices are merged during the algorithm.
	n := g.n
	w := make([][]int64, n)
	for i := range w {
		w[i] = append([]int64(nil), g.w[i]...)
	}
	// members[i] = original vertices merged into contracted vertex i.
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	bestWeight := int64(-1)
	var bestSide []int

	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase) starting from active[0].
		inA := make(map[int]bool, len(active))
		weights := make(map[int]int64, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			// Select the most tightly connected vertex not yet in A.
			sel, selW := -1, int64(-1)
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		tt := order[len(order)-1]
		s := order[len(order)-2]
		cutOfPhase := weights[tt]
		if bestWeight < 0 || cutOfPhase < bestWeight {
			bestWeight = cutOfPhase
			bestSide = append([]int(nil), members[tt]...)
		}
		// Merge t into s.
		for _, v := range active {
			if v == s || v == tt {
				continue
			}
			w[s][v] += w[tt][v]
			w[v][s] = w[s][v]
		}
		members[s] = append(members[s], members[tt]...)
		// Remove t from the active list.
		next := active[:0]
		for _, v := range active {
			if v != tt {
				next = append(next, v)
			}
		}
		active = next
	}

	side := make([]bool, g.n)
	for _, v := range bestSide {
		side[v] = true
	}
	return bestWeight, side
}

// MaxFlow computes the maximum s-t flow with the Edmonds–Karp algorithm,
// treating each undirected edge {u,v} of weight w as capacity w in both
// directions.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	cap := make([][]int64, g.n)
	for i := range cap {
		cap[i] = append([]int64(nil), g.w[i]...)
	}
	var flow int64
	for {
		// BFS for a shortest augmenting path.
		parent := make([]int, g.n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < g.n; v++ {
				if parent[v] == -1 && cap[u][v] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] == -1 {
			return flow
		}
		// Find bottleneck.
		aug := int64(1<<62 - 1)
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			if cap[u][v] < aug {
				aug = cap[u][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			cap[u][v] -= aug
			cap[v][u] += aug
		}
		flow += aug
	}
}

// MinCutST returns the weight and side assignment of a minimum s-t cut
// (side[v] true for the s-side), computed via Edmonds–Karp max flow and a
// final residual-reachability pass.
func (g *Graph) MinCutST(s, t int) (int64, []bool) {
	if s == t {
		panic("graph: MinCutST with s == t")
	}
	cap := make([][]int64, g.n)
	for i := range cap {
		cap[i] = append([]int64(nil), g.w[i]...)
	}
	var flow int64
	for {
		parent := make([]int, g.n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < g.n; v++ {
				if parent[v] == -1 && cap[u][v] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] == -1 {
			break
		}
		aug := int64(1<<62 - 1)
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			if cap[u][v] < aug {
				aug = cap[u][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			cap[u][v] -= aug
			cap[v][u] += aug
		}
		flow += aug
	}
	side := make([]bool, g.n)
	side[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < g.n; v++ {
			if !side[v] && cap[u][v] > 0 {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return flow, side
}
