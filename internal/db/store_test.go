package db

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

// openTestDisk opens a disk store in a fresh temp dir and registers cleanup.
func openTestDisk(t *testing.T, shards int) (*DiskStore, string) {
	t.Helper()
	dir := t.TempDir()
	ds, err := OpenDisk(dir, testSchema(), shards)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds, dir
}

// seedFacts inserts n deterministic pseudo-random facts and returns them.
func seedFacts(t *testing.T, s Store, seed int64, n int) []Fact {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Include awkward values: empty strings, separators, quotes, unicode.
	vals := []string{"", "a;b", "a\\", "v w", "'", "日本", "x\x1fy"}
	var out []Fact
	for i := 0; i < n; i++ {
		var f Fact
		if rng.Intn(2) == 0 {
			f = NewFact("Teams", fmt.Sprintf("t%d", rng.Intn(n)), vals[rng.Intn(len(vals))])
		} else {
			f = NewFact("Goals", vals[rng.Intn(len(vals))], fmt.Sprintf("d%d", rng.Intn(n)))
		}
		if _, err := s.InsertFact(f); err != nil {
			t.Fatalf("InsertFact(%v): %v", f, err)
		}
		out = append(out, f)
	}
	return out
}

func TestDiskStoreBasics(t *testing.T) {
	ds, _ := openTestDisk(t, 4)
	f := NewFact("Teams", "GER", "EU")
	if ch, err := ds.InsertFact(f); err != nil || !ch {
		t.Fatalf("InsertFact = %v, %v", ch, err)
	}
	if !ds.Has(f) {
		t.Errorf("Has = false after insert")
	}
	if ch, err := ds.InsertFact(f); err != nil || ch {
		t.Errorf("duplicate insert = %v, %v; want false, nil", ch, err)
	}
	if g := ds.Generation(); g != 1 {
		t.Errorf("Generation = %d after one effective edit, want 1", g)
	}
	if ch, err := ds.DeleteFact(f); err != nil || !ch {
		t.Errorf("DeleteFact = %v, %v", ch, err)
	}
	if ds.Has(f) {
		t.Errorf("fact present after delete")
	}
	if _, err := ds.InsertFact(NewFact("Nope", "x")); err == nil {
		t.Errorf("insert into unknown relation: want error")
	}
	if _, err := ds.InsertFact(NewFact("Teams", "only-one")); err == nil {
		t.Errorf("arity mismatch: want error")
	}
	if r := ds.Rel("Nope"); r != nil {
		t.Errorf("Rel(unknown) = %v, want nil", r)
	}
}

func TestDiskMemParity(t *testing.T) {
	ds, _ := openTestDisk(t, 3)
	md := New(testSchema())
	rng := rand.New(rand.NewSource(7))
	vals := []string{"", "a;b", "a\\", "v w", "'", "日本"}
	for i := 0; i < 500; i++ {
		var f Fact
		if rng.Intn(2) == 0 {
			f = NewFact("Teams", vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
		} else {
			f = NewFact("Goals", fmt.Sprintf("p%d", rng.Intn(20)), vals[rng.Intn(len(vals))])
		}
		var e Edit
		if rng.Intn(4) == 0 {
			e = Deletion(f)
		} else {
			e = Insertion(f)
		}
		ch1, err1 := ds.Apply(e)
		ch2, err2 := md.Apply(e)
		if ch1 != ch2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("edit %v: disk (%v, %v) vs mem (%v, %v)", e, ch1, err1, ch2, err2)
		}
	}
	if !Equal(ds, md) {
		t.Fatalf("disk and mem stores diverged: distance %d", Distance(ds, md))
	}
	// Facts() must be byte-identical (deterministic order).
	df, mf := ds.Facts(), md.Facts()
	if len(df) != len(mf) {
		t.Fatalf("Facts length: disk %d, mem %d", len(df), len(mf))
	}
	for i := range df {
		if df[i].Rel != mf[i].Rel || !df[i].Args.Equal(mf[i].Args) {
			t.Fatalf("Facts[%d]: disk %v, mem %v", i, df[i], mf[i])
		}
	}
	// Scan parity across every column binding.
	for _, name := range md.Schema().Names() {
		mr, dr := md.Rel(name), ds.Rel(name)
		for col := 0; col < mr.Arity(); col++ {
			for _, v := range append(vals, "absent-value") {
				b := []Binding{{Col: col, Value: v}}
				if got, want := dr.MatchCount(b), mr.MatchCount(b); got != want {
					t.Errorf("%s MatchCount(col=%d,%q): disk %d, mem %d", name, col, v, got, want)
				}
			}
		}
	}
}

func TestDiskReopenRoundTrip(t *testing.T) {
	ds, dir := openTestDisk(t, 4)
	seedFacts(t, ds, 42, 300)
	want := ds.Facts()
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen with a different (ignored) shard request: META pins the layout.
	re, err := OpenDisk(dir, testSchema(), 9)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Stats().Shards != 4 {
		t.Errorf("reopen shards = %d, want 4 from metadata", re.Stats().Shards)
	}
	got := re.Facts()
	if len(got) != len(want) {
		t.Fatalf("reopen facts = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Rel != want[i].Rel || !got[i].Args.Equal(want[i].Args) {
			t.Fatalf("reopen Facts[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDiskCrashRecovery(t *testing.T) {
	ds, dir := openTestDisk(t, 2)
	seedFacts(t, ds, 1, 100)
	if err := ds.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	synced := DeepCopy(ds)
	// Edits after the sync may or may not survive the kill.
	var after []Fact
	for i := 0; i < 50; i++ {
		f := NewFact("Teams", fmt.Sprintf("post%d", i), "X")
		if _, err := ds.InsertFact(f); err != nil {
			t.Fatalf("post-sync insert: %v", err)
		}
		after = append(after, f)
	}
	ds.Crash()
	re, err := OpenDisk(dir, testSchema(), 2)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	// Every synced fact must survive.
	for _, f := range synced.Facts() {
		if !re.Has(f) {
			t.Fatalf("synced fact %v lost after crash", f)
		}
	}
	// Anything extra must be a post-sync fact (a recovered prefix), never garbage.
	extra := 0
	for _, f := range re.Facts() {
		if synced.Has(f) {
			continue
		}
		ok := false
		for _, a := range after {
			if f.Rel == a.Rel && f.Args.Equal(a.Args) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("recovered unknown fact %v", f)
		}
		extra++
	}
	t.Logf("recovered %d/%d post-sync facts", extra, len(after))
}

func TestDiskSnapshotIsolation(t *testing.T) {
	ds, _ := openTestDisk(t, 2)
	seedFacts(t, ds, 3, 50)
	snap := ds.Snapshot()
	if snap.ID() != ds.ID() {
		t.Errorf("snapshot ID = %d, want source ID %d", snap.ID(), ds.ID())
	}
	if snap.Generation() != ds.Generation() {
		t.Errorf("snapshot gen = %d, want %d", snap.Generation(), ds.Generation())
	}
	wantLen := snap.Len()
	f := NewFact("Teams", "post-snap", "X")
	if _, err := ds.InsertFact(f); err != nil {
		t.Fatalf("InsertFact: %v", err)
	}
	if snap.Has(f) {
		t.Errorf("snapshot sees post-snapshot insert")
	}
	if snap.Len() != wantLen {
		t.Errorf("snapshot Len changed: %d -> %d", wantLen, snap.Len())
	}
	// Forking the snapshot yields an independent mutable store.
	fork := snap.Fork()
	if fork.ID() == ds.ID() || fork.Generation() != 0 {
		t.Errorf("fork identity: id %d (src %d), gen %d", fork.ID(), ds.ID(), fork.Generation())
	}
	g := NewFact("Teams", "fork-only", "Y")
	if _, err := fork.InsertFact(g); err != nil {
		t.Fatalf("fork insert: %v", err)
	}
	if ds.Has(g) || snap.Has(g) {
		t.Errorf("fork edit leaked to source or snapshot")
	}
}

func TestDiskForkIndependence(t *testing.T) {
	ds, dir := openTestDisk(t, 2)
	seedFacts(t, ds, 5, 80)
	before := ds.Facts()
	fork := ds.Fork()
	if !Equal(fork, ds) {
		t.Fatalf("fork differs from source at birth")
	}
	// Heavy divergence in both directions.
	for i := 0; i < 40; i++ {
		if _, err := fork.InsertFact(NewFact("Goals", fmt.Sprintf("f%d", i), "d")); err != nil {
			t.Fatalf("fork insert: %v", err)
		}
	}
	for _, f := range before[:10] {
		if _, err := fork.DeleteFact(f); err != nil {
			t.Fatalf("fork delete: %v", err)
		}
	}
	if _, err := ds.InsertFact(NewFact("Teams", "src-only", "Z")); err != nil {
		t.Fatalf("source insert: %v", err)
	}
	// Fork edits are not durable: a reopen sees only the source's edits.
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := OpenDisk(dir, testSchema(), 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if !re.Has(NewFact("Teams", "src-only", "Z")) {
		t.Errorf("source edit lost on reopen")
	}
	if re.Has(NewFact("Goals", "f0", "d")) {
		t.Errorf("fork edit leaked to disk")
	}
}

func TestDiskCSVRoundTrip(t *testing.T) {
	ds, _ := openTestDisk(t, 4)
	md := New(testSchema())
	seedFacts(t, md, 11, 120)
	if _, err := Copy(ds, md); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	var buf1, buf2 writerBuffer
	if err := WriteCSV(&buf1, ds); err != nil {
		t.Fatalf("WriteCSV(disk): %v", err)
	}
	if err := WriteCSV(&buf2, md); err != nil {
		t.Fatalf("WriteCSV(mem): %v", err)
	}
	if string(buf1.b) != string(buf2.b) {
		t.Fatalf("CSV output differs between backends")
	}
}

// writerBuffer is a minimal io.Writer to avoid importing bytes twice in this
// package's tests.
type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func TestMemSnapshotSemantics(t *testing.T) {
	d := New(testSchema())
	seedFacts(t, d, 9, 40)
	snap := d.Snapshot()
	if snap.ID() != d.ID() || snap.Generation() != d.Generation() {
		t.Fatalf("mem snapshot identity: (%d,%d), want (%d,%d)",
			snap.ID(), snap.Generation(), d.ID(), d.Generation())
	}
	f := NewFact("Teams", "late", "X")
	if _, err := d.InsertFact(f); err != nil {
		t.Fatal(err)
	}
	if snap.Has(f) {
		t.Errorf("mem snapshot sees later insert")
	}
	fork := snap.Fork()
	if fork.Generation() != 0 || fork.ID() == d.ID() {
		t.Errorf("mem fork identity: id %d gen %d", fork.ID(), fork.Generation())
	}
}

func TestCloneCopyOnWrite(t *testing.T) {
	d := New(testSchema())
	facts := seedFacts(t, d, 13, 60)
	c := d.Clone()
	if !Equal(c, d) {
		t.Fatalf("clone differs at birth")
	}
	// Mutating the source must not affect the clone, and vice versa.
	if _, err := d.DeleteFact(facts[0]); err != nil {
		t.Fatal(err)
	}
	if !c.Has(facts[0]) {
		t.Errorf("source delete visible in clone")
	}
	g := NewFact("Teams", "clone-only", "C")
	if _, err := c.InsertFact(g); err != nil {
		t.Fatal(err)
	}
	if d.Has(g) {
		t.Errorf("clone insert visible in source")
	}
	// Scans on the mutated clone see consistent indexes.
	if got := c.Rel("Teams").MatchCount([]Binding{{Col: 0, Value: "clone-only"}}); got != 1 {
		t.Errorf("clone index MatchCount = %d, want 1", got)
	}
}

func TestStatsShapes(t *testing.T) {
	d := New(testSchema())
	seedFacts(t, d, 21, 30)
	st := d.Stats()
	if st.Backend != "mem" || st.Shards != 1 || st.TotalFacts != d.Len() {
		t.Errorf("mem stats = %+v", st)
	}
	ds, _ := openTestDisk(t, 4)
	if _, err := Copy(ds, d); err != nil {
		t.Fatal(err)
	}
	dst := ds.Stats()
	if dst.Backend != "disk" || dst.Shards != 4 || dst.TotalFacts != d.Len() {
		t.Errorf("disk stats = %+v", dst)
	}
	if dst.Symbols == 0 {
		t.Errorf("disk stats symbols = 0 after inserts")
	}
	if dst.DiskBytes == 0 {
		t.Errorf("disk stats bytes = 0 after inserts")
	}
	if dst.Relations["Teams"]+dst.Relations["Goals"] != dst.TotalFacts {
		t.Errorf("per-relation counts don't sum: %+v", dst)
	}
}

func TestSymtabTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "syms.dat")
	s, _, err := openSymtab(faultfs.OS(), path, formatVersion)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"alpha", "", "beta", "日本"} {
		if _, err := s.intern(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.close(true); err != nil {
		t.Fatal(err)
	}
	// Append a torn record: a length header promising more bytes than exist.
	appendBytes(t, path, []byte{200, 1, 'x'})
	re, _, err := openSymtab(faultfs.OS(), path, formatVersion)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer re.close(true)
	if re.size() != 4 {
		t.Fatalf("size after torn tail = %d, want 4", re.size())
	}
	if id, ok := re.lookup("beta"); !ok || id != 2 {
		t.Errorf("lookup beta = %d, %v", id, ok)
	}
	// New interning continues from the truncation point.
	id, err := re.intern("gamma")
	if err != nil || id != 4 {
		t.Errorf("intern gamma = %d, %v; want 4, nil", id, err)
	}
}

func TestDiskSegmentTornTail(t *testing.T) {
	ds, dir := openTestDisk(t, 1)
	if _, err := ds.InsertFact(NewFact("Teams", "A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the single Teams segment with a garbage tail.
	appendBytes(t, filepath.Join(dir, segName("Teams", 0)), []byte{5, 9, 9})
	re, err := OpenDisk(dir, testSchema(), 1)
	if err != nil {
		t.Fatalf("reopen with torn segment: %v", err)
	}
	defer re.Close()
	if !re.Has(NewFact("Teams", "A", "B")) {
		t.Errorf("good prefix lost to torn tail")
	}
	if re.Len() != 1 {
		t.Errorf("Len = %d after torn-tail truncation, want 1", re.Len())
	}
	// The store stays writable after truncation.
	if _, err := re.InsertFact(NewFact("Teams", "C", "D")); err != nil {
		t.Errorf("insert after truncation: %v", err)
	}
}
