package db

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Relation{Name: "Teams", Attrs: []string{"name", "continent"}},
		schema.Relation{Name: "Goals", Attrs: []string{"player", "date"}},
	)
}

func TestDatabaseInsertDelete(t *testing.T) {
	d := New(testSchema())
	f := NewFact("Teams", "GER", "EU")
	ch, err := d.InsertFact(f)
	if err != nil || !ch {
		t.Fatalf("InsertFact = %v, %v", ch, err)
	}
	if !d.Has(f) {
		t.Errorf("Has = false after insert")
	}
	ch, err = d.InsertFact(f)
	if err != nil || ch {
		t.Errorf("duplicate InsertFact = %v, %v; want false, nil (idempotent)", ch, err)
	}
	ch, err = d.DeleteFact(f)
	if err != nil || !ch {
		t.Errorf("DeleteFact = %v, %v", ch, err)
	}
	if d.Has(f) {
		t.Errorf("fact present after delete")
	}
}

func TestDatabaseErrors(t *testing.T) {
	d := New(testSchema())
	if _, err := d.InsertFact(NewFact("Nope", "x")); err == nil {
		t.Errorf("insert into unknown relation: want error")
	}
	if _, err := d.InsertFact(NewFact("Teams", "only-one")); err == nil {
		t.Errorf("arity mismatch: want error")
	}
	if _, err := d.DeleteFact(NewFact("Nope", "x")); err == nil {
		t.Errorf("delete from unknown relation: want error")
	}
}

func TestApplyIdempotence(t *testing.T) {
	d := New(testSchema())
	f := NewFact("Teams", "ESP", "EU")
	if ch, _ := d.Apply(Insertion(f)); !ch {
		t.Errorf("first insert edit: changed = false")
	}
	if ch, _ := d.Apply(Insertion(f)); ch {
		t.Errorf("second insert edit: changed = true, want idempotent no-op")
	}
	if ch, _ := d.Apply(Deletion(f)); !ch {
		t.Errorf("delete edit: changed = false")
	}
	if ch, _ := d.Apply(Deletion(f)); ch {
		t.Errorf("second delete edit: changed = true, want idempotent no-op")
	}
}

func TestApplyAll(t *testing.T) {
	d := New(testSchema())
	edits := []Edit{
		Insertion(NewFact("Teams", "GER", "EU")),
		Insertion(NewFact("Teams", "GER", "EU")), // no-op
		Insertion(NewFact("Goals", "Götze", "13.07.14")),
		Deletion(NewFact("Teams", "GER", "EU")),
	}
	n, err := d.ApplyAll(edits)
	if err != nil {
		t.Fatalf("ApplyAll error: %v", err)
	}
	if n != 3 {
		t.Errorf("changed = %d, want 3", n)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestApplyAllStopsOnError(t *testing.T) {
	d := New(testSchema())
	edits := []Edit{
		Insertion(NewFact("Teams", "GER", "EU")),
		Insertion(NewFact("Bogus", "x")),
		Insertion(NewFact("Teams", "ESP", "EU")),
	}
	n, err := d.ApplyAll(edits)
	if err == nil {
		t.Fatalf("ApplyAll: want error")
	}
	if n != 1 {
		t.Errorf("changed before error = %d, want 1", n)
	}
	if d.Has(NewFact("Teams", "ESP", "EU")) {
		t.Errorf("edit after error was applied")
	}
}

func TestFactsDeterministicOrder(t *testing.T) {
	d := New(testSchema())
	d.InsertFact(NewFact("Teams", "GER", "EU"))
	d.InsertFact(NewFact("Goals", "Pirlo", "09.07.06"))
	d.InsertFact(NewFact("Teams", "BRA", "SA"))
	got := d.Facts()
	want := []string{"Goals(Pirlo, 09.07.06)", "Teams(BRA, SA)", "Teams(GER, EU)"}
	if len(got) != len(want) {
		t.Fatalf("Facts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("Facts[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestDistanceAndEqual(t *testing.T) {
	a := New(testSchema())
	b := New(testSchema())
	if a.Distance(b) != 0 || !a.Equal(b) {
		t.Fatalf("empty databases not equal")
	}
	a.InsertFact(NewFact("Teams", "GER", "EU"))
	if got := a.Distance(b); got != 1 {
		t.Errorf("Distance = %d, want 1", got)
	}
	if got := b.Distance(a); got != 1 {
		t.Errorf("Distance not symmetric: %d", got)
	}
	b.InsertFact(NewFact("Teams", "ESP", "EU"))
	if got := a.Distance(b); got != 2 {
		t.Errorf("Distance = %d, want 2", got)
	}
	if a.Equal(b) {
		t.Errorf("distinct databases Equal")
	}
}

// TestDistanceMonotoneUnderCorrectEdits is the paper's Proposition 3.3: an
// edit derived from a correct oracle answer never increases |D − DG|.
func TestDistanceMonotoneUnderCorrectEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := testSchema()
	dg := New(s)
	dg.InsertFact(NewFact("Teams", "GER", "EU"))
	dg.InsertFact(NewFact("Teams", "ITA", "EU"))
	dg.InsertFact(NewFact("Goals", "Pirlo", "09.07.06"))

	d := New(s)
	d.InsertFact(NewFact("Teams", "GER", "EU"))
	d.InsertFact(NewFact("Teams", "NED", "SA")) // wrong fact

	for i := 0; i < 200; i++ {
		before := d.Distance(dg)
		// A "correct" edit: insert a fact of DG or delete a fact not in DG.
		var e Edit
		if rng.Intn(2) == 0 {
			facts := dg.Facts()
			e = Insertion(facts[rng.Intn(len(facts))])
		} else {
			facts := d.Facts()
			if len(facts) == 0 {
				continue
			}
			f := facts[rng.Intn(len(facts))]
			if dg.Has(f) {
				continue // deleting a true fact would be an incorrect answer
			}
			e = Deletion(f)
		}
		if _, err := d.Apply(e); err != nil {
			t.Fatalf("Apply(%v): %v", e, err)
		}
		if after := d.Distance(dg); after > before {
			t.Fatalf("edit %v increased distance %d -> %d", e, before, after)
		}
	}
}

func TestDiffTransformsDatabase(t *testing.T) {
	a := New(testSchema())
	a.InsertFact(NewFact("Teams", "NED", "SA"))
	a.InsertFact(NewFact("Teams", "GER", "EU"))
	b := New(testSchema())
	b.InsertFact(NewFact("Teams", "GER", "EU"))
	b.InsertFact(NewFact("Teams", "ITA", "EU"))

	edits := a.Diff(b)
	if len(edits) != 2 {
		t.Fatalf("Diff = %v, want 2 edits", edits)
	}
	if _, err := a.ApplyAll(edits); err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	if !a.Equal(b) {
		t.Errorf("a != b after applying Diff")
	}
}

func TestCloneDeep(t *testing.T) {
	d := New(testSchema())
	d.InsertFact(NewFact("Teams", "GER", "EU"))
	c := d.Clone()
	c.InsertFact(NewFact("Teams", "ITA", "EU"))
	d.DeleteFact(NewFact("Teams", "GER", "EU"))
	if !c.Has(NewFact("Teams", "GER", "EU")) {
		t.Errorf("clone shares relation state with original")
	}
	if d.Has(NewFact("Teams", "ITA", "EU")) {
		t.Errorf("original shares relation state with clone")
	}
	if c.Schema() != d.Schema() {
		t.Errorf("clone should share the immutable schema")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := New(testSchema())
	d.InsertFact(NewFact("Teams", "GER", "EU"))
	d.InsertFact(NewFact("Teams", "comma,value", "EU"))
	d.InsertFact(NewFact("Goals", "Pirlo", "09.07.06"))

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	d2 := New(testSchema())
	if err := d2.LoadCSV(&buf); err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if !d.Equal(d2) {
		t.Errorf("CSV round trip lost facts: distance %d", d.Distance(d2))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	d := New(testSchema())
	if err := d.LoadCSV(strings.NewReader("Bogus,x\n")); err == nil {
		t.Errorf("unknown relation: want error")
	}
	if err := d.LoadCSV(strings.NewReader("Teams\n")); err == nil {
		t.Errorf("short record: want error")
	}
	if err := d.LoadCSV(strings.NewReader("Teams,a,b,c\n")); err == nil {
		t.Errorf("arity mismatch: want error")
	}
}
