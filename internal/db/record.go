package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk record formats.
//
// v1 (legacy, still read and written transparently for stores created
// before the format bump):
//
//	segment record: uvarint(len(payload)) payload
//	payload:        op byte, then arity × uvarint(symbol ID)
//	symbol record:  uvarint(len(value)) value-bytes
//
// v2 (the default for new stores) adds a CRC-32C trailer and commit
// markers:
//
//	segment record: uvarint(len(payload)) payload crc32c(payload)[4, LE]
//	payload:        op ∈ {opInsert, opDelete} + ids, or just {opCommit}
//	symbol record:  uvarint(k) body crc32c(body)[4, LE]
//	                k = 0 → commit marker, empty body
//	                k > 0 → body is a symbol value of k−1 bytes
//
// The trailer lets recovery tell a torn tail from corruption. A torn write
// can only leave an INCOMPLETE record: tearing keeps a prefix, and any
// strict prefix of a record either ends inside the body/trailer (too few
// bytes) or inside a multi-byte length varint (whose every strict prefix
// ends with an MSB-set byte and so fails to decode). A record that is
// COMPLETE — its length decodes and all its bytes are present — but
// invalid (checksum mismatch, bad op, out-of-range symbol ID, implausible
// length, trailing junk) therefore cannot be a tear: it is corruption,
// wherever it sits in the file.
//
// The one ambiguous shape is an incomplete record at EOF whose damage
// *shrank* the file (bit rot plus truncation) — indistinguishable locally
// from a tear. Two mechanisms close it: a byte-granularity resync scan (a
// failed record followed by any later valid record is corruption, since a
// tear ends the file), and commit markers appended on every Sync, which
// guarantee the synced region always ends with a valid record — so
// corruption of synced data is always followed by at least the marker and
// never classifies as a tear.

const (
	// maxSymbolLen bounds one interned symbol (1 MiB) — v2 only; length
	// values past it are corruption, not data.
	maxSymbolLen = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc32c(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// errShortRecord marks an incomplete record: a candidate torn tail,
// pending the resync scan.
var errShortRecord = errors.New("incomplete record")

// invalidRecord marks a complete record that failed validation —
// corruption by the argument above.
type invalidRecord struct{ reason string }

func (e *invalidRecord) Error() string { return e.reason }

// maxSegPayload is the largest well-formed segment payload for a relation
// of the given arity.
func maxSegPayload(arity int) uint64 {
	return uint64(1 + binary.MaxVarintLen32*arity)
}

// segRec is one parsed segment record.
type segRec struct {
	op  byte
	ids []uint32
	n   int // encoded size, header through trailer
}

// parseSegRecord decodes the record at raw[off:] under the given format
// version. Errors are errShortRecord (incomplete: torn-tail candidate) or
// *invalidRecord (complete but corrupt). v1 records carry no checksum, so
// every v1 failure is reported as errShortRecord — the legacy format
// cannot distinguish the two.
func parseSegRecord(raw []byte, off int, version, arity int, symCount uint32) (segRec, error) {
	payloadLen, sz := binary.Uvarint(raw[off:])
	if sz == 0 {
		return segRec{}, errShortRecord
	}
	if sz < 0 {
		if version < 2 {
			return segRec{}, errShortRecord
		}
		return segRec{}, &invalidRecord{"length varint overflow"}
	}
	if payloadLen == 0 || payloadLen > maxSegPayload(arity) {
		if version < 2 {
			return segRec{}, errShortRecord
		}
		return segRec{}, &invalidRecord{fmt.Sprintf("implausible record length %d", payloadLen)}
	}
	end := off + sz + int(payloadLen)
	if version >= 2 {
		end += 4 // CRC trailer
	}
	if end > len(raw) {
		return segRec{}, errShortRecord
	}
	payload := raw[off+sz : off+sz+int(payloadLen)]
	if version >= 2 {
		if got, want := crc32c(payload), binary.LittleEndian.Uint32(raw[end-4:end]); got != want {
			return segRec{}, &invalidRecord{fmt.Sprintf("checksum mismatch: computed %08x, stored %08x", got, want)}
		}
	}
	op := payload[0]
	switch op {
	case opCommit:
		if version < 2 || len(payload) != 1 {
			return segRec{}, segInvalid(version, "malformed commit marker")
		}
		return segRec{op: op, n: end - off}, nil
	case opInsert, opDelete:
		ids, ok := decodeRecord(payload, arity, symCount)
		if !ok {
			return segRec{}, segInvalid(version, "undecodable record body")
		}
		return segRec{op: op, ids: ids, n: end - off}, nil
	}
	return segRec{}, segInvalid(version, fmt.Sprintf("unknown op %d", op))
}

// segInvalid downgrades invalid verdicts to torn-tail candidates for v1
// files, which carry no checksums to justify the stronger claim.
func segInvalid(version int, reason string) error {
	if version < 2 {
		return errShortRecord
	}
	return &invalidRecord{reason}
}

// appendSegRecord encodes one segment record onto dst in the given format
// version. ids is nil for commit markers.
func appendSegRecord(dst []byte, version int, op byte, ids []uint32) []byte {
	payload := make([]byte, 1, 1+binary.MaxVarintLen32*len(ids))
	payload[0] = op
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id))
		payload = append(payload, tmp[:n]...)
	}
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	dst = append(dst, tmp[:n]...)
	dst = append(dst, payload...)
	if version >= 2 {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32c(payload))
		dst = append(dst, crc[:]...)
	}
	return dst
}

// symRec is one parsed symbol-table record.
type symRec struct {
	val    string
	marker bool
	n      int
}

// parseSymRecord decodes the symbol record at raw[off:] under the given
// format version, with the same errShortRecord / *invalidRecord split as
// parseSegRecord.
func parseSymRecord(raw []byte, off int, version int) (symRec, error) {
	k, sz := binary.Uvarint(raw[off:])
	if sz == 0 {
		return symRec{}, errShortRecord
	}
	if sz < 0 {
		if version < 2 {
			return symRec{}, errShortRecord
		}
		return symRec{}, &invalidRecord{"length varint overflow"}
	}
	if version < 2 {
		// v1: uvarint(len) + bytes, no trailer, no markers, no plausibility
		// cap (exact legacy semantics: present means valid).
		end := off + sz + int(k)
		if end > len(raw) || end < off {
			return symRec{}, errShortRecord
		}
		return symRec{val: string(raw[off+sz : end]), n: end - off}, nil
	}
	if k > maxSymbolLen+1 {
		return symRec{}, &invalidRecord{fmt.Sprintf("implausible symbol length %d", k)}
	}
	vlen := int(k) - 1 // k = 0 is a commit marker with an empty body
	if k == 0 {
		vlen = 0
	}
	end := off + sz + vlen + 4
	if end > len(raw) {
		return symRec{}, errShortRecord
	}
	body := raw[off+sz : off+sz+vlen]
	if got, want := crc32c(body), binary.LittleEndian.Uint32(raw[end-4:end]); got != want {
		return symRec{}, &invalidRecord{fmt.Sprintf("checksum mismatch: computed %08x, stored %08x", got, want)}
	}
	if k == 0 {
		return symRec{marker: true, n: end - off}, nil
	}
	return symRec{val: string(body), n: end - off}, nil
}

// appendSymRecord encodes one symbol record (or, with marker set, a commit
// marker — v2 only) onto dst.
func appendSymRecord(dst []byte, version int, v string, marker bool) []byte {
	var tmp [binary.MaxVarintLen64]byte
	if version < 2 {
		n := binary.PutUvarint(tmp[:], uint64(len(v)))
		dst = append(dst, tmp[:n]...)
		return append(dst, v...)
	}
	k := uint64(len(v)) + 1
	if marker {
		k = 0
	}
	n := binary.PutUvarint(tmp[:], k)
	dst = append(dst, tmp[:n]...)
	dst = append(dst, v...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32c([]byte(v)))
	return append(dst, crc[:]...)
}

// resyncSeg reports whether any byte offset after a failed record parses
// as a complete, valid segment record — in which case the failure was
// corruption, not a tear (a tear ends the file).
func resyncSeg(raw []byte, from int, version, arity int, symCount uint32) bool {
	for i := from; i < len(raw); i++ {
		if _, err := parseSegRecord(raw, i, version, arity, symCount); err == nil {
			return true
		}
	}
	return false
}

// resyncSym is resyncSeg for the symbol table.
func resyncSym(raw []byte, from int, version int) bool {
	for i := from; i < len(raw); i++ {
		if _, err := parseSymRecord(raw, i, version); err == nil {
			return true
		}
	}
	return false
}
