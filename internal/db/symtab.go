package db

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/faultfs"
)

// symtab interns constant values to dense uint32 IDs, backed by an
// append-only log (record.go documents both on-disk formats). Interning is
// what lets the disk store hold each distinct string once no matter how
// many tuples reference it. A symtab is shared between a DiskStore and all
// its forks/snapshots, so it carries its own lock.
type symtab struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string

	fs      faultfs.FS
	version int
	f       faultfs.File  // nil for a purely in-memory table
	w       *bufio.Writer // nil iff f is nil
	dirty   bool          // symbols appended since the last commit marker (v2)
	err     error         // first append failure; sticky, poisons durable interning
}

// symRecovery describes what openSymtab found while replaying the log.
type symRecovery struct {
	records   int64 // symbol records replayed
	tornBytes int64 // bytes truncated from a torn tail
}

// newSymtab returns an empty in-memory symbol table.
func newSymtab() *symtab {
	return &symtab{ids: make(map[string]uint32)}
}

// openSymtab loads (or creates) the symbol log at path. A torn tail — an
// incomplete record at EOF with nothing valid after it, the signature of a
// crash mid-append — is truncated away; symbols past it were never
// referenced by any surviving fact record (facts are only written after
// their symbols are flushed). Under the v2 format a complete-but-invalid
// record, or an incomplete one followed by valid data, is corruption and
// returns a *CorruptError (see record.go for why the two are separable).
func openSymtab(fsys faultfs.FS, path string, version int) (*symtab, symRecovery, error) {
	s := newSymtab()
	s.fs = fsys
	s.version = version
	var rcv symRecovery
	raw, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, rcv, fmt.Errorf("db: reading symbol table: %w", err)
	}
	good := 0
	for off := 0; off < len(raw); {
		r, perr := parseSymRecord(raw, off, version)
		if perr != nil {
			if inv, ok := perr.(*invalidRecord); ok {
				return nil, rcv, &CorruptError{Path: path, Offset: int64(off), Reason: inv.reason}
			}
			if version >= 2 && resyncSym(raw, off+1, version) {
				return nil, rcv, &CorruptError{Path: path, Offset: int64(off),
					Reason: "incomplete record followed by intact records"}
			}
			rcv.tornBytes = int64(len(raw) - good)
			break
		}
		if !r.marker {
			s.ids[r.val] = uint32(len(s.strs))
			s.strs = append(s.strs, r.val)
			rcv.records++
		}
		off += r.n
		good = off
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, rcv, fmt.Errorf("db: opening symbol table: %w", err)
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, rcv, fmt.Errorf("db: truncating torn symbol tail: %w", err)
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, rcv, fmt.Errorf("db: seeking symbol table: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, rcv, nil
}

// intern returns the ID for v, assigning (and, for durable tables,
// appending and flushing) a new one if needed. New symbols are flushed to
// the OS before intern returns so that a fact record referencing them can
// never reach the OS first — a killed process leaves no fact pointing past
// the symbol log.
func (s *symtab) intern(v string) (uint32, error) {
	s.mu.RLock()
	id, ok := s.ids[v]
	s.mu.RUnlock()
	if ok {
		return id, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[v]; ok {
		return id, nil
	}
	if s.w != nil {
		if s.err != nil {
			return 0, s.err
		}
		recBytes := appendSymRecord(nil, s.version, v, false)
		if _, err := s.w.Write(recBytes); err == nil {
			err = s.w.Flush()
			if err != nil {
				s.err = fmt.Errorf("db: appending symbol: %w", err)
				return 0, s.err
			}
		} else {
			s.err = fmt.Errorf("db: appending symbol: %w", err)
			return 0, s.err
		}
		s.dirty = true
	}
	id = uint32(len(s.strs))
	s.ids[v] = id
	s.strs = append(s.strs, v)
	return id, nil
}

// lookup returns the ID for v without assigning one.
func (s *symtab) lookup(v string) (uint32, bool) {
	s.mu.RLock()
	id, ok := s.ids[v]
	s.mu.RUnlock()
	return id, ok
}

// str resolves an ID back to its string. IDs come from the table itself, so
// out-of-range IDs indicate a corrupt segment record; callers validate
// against size() during replay.
func (s *symtab) str(id uint32) string {
	s.mu.RLock()
	v := s.strs[id]
	s.mu.RUnlock()
	return v
}

// size returns the number of interned symbols.
func (s *symtab) size() int {
	s.mu.RLock()
	n := len(s.strs)
	s.mu.RUnlock()
	return n
}

// markerLocked appends a commit marker if symbols landed since the last
// one (v2 stores only). Callers hold s.mu and flush afterwards; once the
// marker is durable, corruption of any earlier synced record can never be
// mistaken for a torn tail.
func (s *symtab) markerLocked() error {
	if s.w == nil || s.version < 2 || !s.dirty {
		return nil
	}
	if _, err := s.w.Write(appendSymRecord(nil, s.version, "", true)); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// sync fsyncs the symbol log. Both flush and fsync failures are sticky: a
// device that failed an fsync may have dropped arbitrary dirty pages, so
// no later ack can be trusted (fail-stop, as for segment files).
func (s *symtab) sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	if err := s.markerLocked(); err != nil {
		s.err = fmt.Errorf("db: appending symbol commit marker: %w", err)
		return s.err
	}
	if err := s.w.Flush(); err != nil {
		s.err = fmt.Errorf("db: flushing symbol table: %w", err)
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("db: syncing symbol table: %w", err)
		return s.err
	}
	return nil
}

// close flushes and closes the symbol log. With flush=false it simulates a
// process kill: buffered symbols are dropped on the floor.
func (s *symtab) close(flush bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var err error
	if flush && s.err == nil {
		err = s.markerLocked()
		if ferr := s.w.Flush(); err == nil {
			err = ferr
		}
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f, s.w = nil, nil
	return err
}
