package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// symtab interns constant values to dense uint32 IDs, backed by an
// append-only log (uvarint length + raw bytes per symbol, ID = ordinal).
// Interning is what lets the disk store hold each distinct string once no
// matter how many tuples reference it. A symtab is shared between a
// DiskStore and all its forks/snapshots, so it carries its own lock.
type symtab struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string

	f   *os.File      // nil for a purely in-memory table
	w   *bufio.Writer // nil iff f is nil
	err error         // first append failure; sticky, poisons durable interning
}

// newSymtab returns an empty in-memory symbol table.
func newSymtab() *symtab {
	return &symtab{ids: make(map[string]uint32)}
}

// openSymtab loads (or creates) the symbol log at path. A torn tail — an
// entry whose bytes end mid-record, the signature of a crash mid-append —
// is truncated away; symbols past it were never referenced by any synced
// fact record (facts are only written after their symbols are flushed).
func openSymtab(path string) (*symtab, error) {
	s := newSymtab()
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("db: reading symbol table: %w", err)
	}
	good := 0
	for off := 0; off < len(raw); {
		n, sz := binary.Uvarint(raw[off:])
		if sz <= 0 || off+sz+int(n) > len(raw) {
			break // torn tail: a partial length header or truncated payload
		}
		v := string(raw[off+sz : off+sz+int(n)])
		s.ids[v] = uint32(len(s.strs))
		s.strs = append(s.strs, v)
		off += sz + int(n)
		good = off
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: opening symbol table: %w", err)
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, fmt.Errorf("db: truncating torn symbol tail: %w", err)
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("db: seeking symbol table: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// intern returns the ID for v, assigning (and, for durable tables,
// appending and flushing) a new one if needed. New symbols are flushed to
// the OS before intern returns so that a fact record referencing them can
// never reach the OS first — a killed process leaves no fact pointing past
// the symbol log.
func (s *symtab) intern(v string) (uint32, error) {
	s.mu.RLock()
	id, ok := s.ids[v]
	s.mu.RUnlock()
	if ok {
		return id, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[v]; ok {
		return id, nil
	}
	if s.w != nil {
		if s.err != nil {
			return 0, s.err
		}
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(len(v)))
		if _, err := s.w.Write(hdr[:n]); err == nil {
			_, err = s.w.WriteString(v)
			if err == nil {
				err = s.w.Flush()
			}
			if err != nil {
				s.err = fmt.Errorf("db: appending symbol: %w", err)
				return 0, s.err
			}
		} else {
			s.err = fmt.Errorf("db: appending symbol: %w", err)
			return 0, s.err
		}
	}
	id = uint32(len(s.strs))
	s.ids[v] = id
	s.strs = append(s.strs, v)
	return id, nil
}

// lookup returns the ID for v without assigning one.
func (s *symtab) lookup(v string) (uint32, bool) {
	s.mu.RLock()
	id, ok := s.ids[v]
	s.mu.RUnlock()
	return id, ok
}

// str resolves an ID back to its string. IDs come from the table itself, so
// out-of-range IDs indicate a corrupt segment record; callers validate
// against size() during replay.
func (s *symtab) str(id uint32) string {
	s.mu.RLock()
	v := s.strs[id]
	s.mu.RUnlock()
	return v
}

// size returns the number of interned symbols.
func (s *symtab) size() int {
	s.mu.RLock()
	n := len(s.strs)
	s.mu.RUnlock()
	return n
}

// sync fsyncs the symbol log.
func (s *symtab) sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	if err := s.w.Flush(); err != nil {
		s.err = fmt.Errorf("db: flushing symbol table: %w", err)
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("db: syncing symbol table: %w", err)
	}
	return nil
}

// close flushes and closes the symbol log. With flush=false it simulates a
// process kill: buffered symbols are dropped on the floor.
func (s *symtab) close(flush bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var err error
	if flush {
		err = s.w.Flush()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f, s.w = nil, nil
	return err
}
