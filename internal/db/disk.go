package db

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faultfs"
	"repro/internal/schema"
)

// The disk-backed store keeps facts in per-relation append-only segment
// files, hash-sharded N ways, with constants interned to uint32 IDs through
// a shared symbol table (symtab.go). In memory each shard holds only
// interned tuples ([]uint32) plus per-column hash indexes over IDs — the
// strings themselves live once in the symbol table no matter how many
// tuples reference them, which is what lets a single instance hold tens of
// millions of facts without RAM-resident string duplication.
//
// Durability model: every mutating edit appends one record to its shard's
// segment through a buffered writer; new symbols are flushed to the OS
// before the first fact record referencing them is buffered. Sync() flushes
// and fsyncs everything — after it returns, even a machine crash loses
// nothing. A process kill between Syncs loses at most the buffered tail;
// reopening truncates each segment at its last complete, valid record
// (per-shard prefix recovery, the same torn-tail contract as the WAL).
//
// Robustness model (v2 format, record.go): every record carries a CRC-32C
// trailer and every Sync appends a commit marker, so recovery can prove
// whether a decode failure is a torn tail (truncate and continue) or
// corruption (typed *CorruptError; the file is quarantined and a sticky
// QUARANTINE marker blocks reopens rather than inventing facts). All file
// I/O goes through a faultfs.FS so the whole story is provable under
// seeded fault injection (internal/check.CheckDiskFaults).

const (
	// diskMetaFile pins the shard fan-out a store was created with; reopens
	// use it regardless of the requested shard count (records are routed by
	// hash, so the fan-out is part of the on-disk format).
	diskMetaFile = "store.json"
	diskSymsFile = "symbols.dat"

	// formatVersion is the on-disk format for newly created stores. Version
	// 1 (no checksums, no commit markers) is still read and written
	// transparently for stores created before the bump.
	formatVersion = 2

	// DefaultShards is the per-relation shard fan-out used when OpenDisk is
	// given a non-positive count.
	DefaultShards = 4

	opInsert = 1
	opDelete = 2
	// opCommit marks a Sync: it carries no data, but its presence
	// guarantees the synced region ends with a valid record, which is what
	// lets recovery refuse to classify synced-region corruption as a torn
	// tail (v2 only).
	opCommit = 3
)

// diskMeta is the persisted store descriptor. Checksum (v2+) covers
// Version and Shards: a bit flip in either would silently re-route every
// tuple to the wrong shard, so the metadata must be self-validating.
type diskMeta struct {
	Version  int    `json:"version"`
	Shards   int    `json:"shards"`
	Checksum uint32 `json:"checksum,omitempty"`
}

// metaChecksum is the self-check over the load-bearing metadata fields.
func metaChecksum(version, shards int) uint32 {
	return crc32c([]byte(fmt.Sprintf("qoco-meta;v=%d;shards=%d", version, shards)))
}

// DiskOption configures OpenDisk.
type DiskOption func(*diskOptions)

type diskOptions struct {
	fs            faultfs.FS
	version       int
	replayWorkers int
}

// WithFS routes every file operation through fsys — the fault-injection
// seam. Production opens use the default, faultfs.OS().
func WithFS(fsys faultfs.FS) DiskOption {
	return func(o *diskOptions) { o.fs = fsys }
}

// WithFormatVersion pins the on-disk format for newly created stores (1 or
// 2); reopens always use the version recorded in the store's metadata.
// Exists so tests (and emergency rollbacks) can produce legacy stores.
func WithFormatVersion(v int) DiskOption {
	return func(o *diskOptions) { o.version = v }
}

// WithReplayWorkers bounds the open-time segment-replay parallelism; n <= 0
// (the default) means GOMAXPROCS. File operations stay serial and in sorted
// relation order regardless — only the pure parse of already-read segment
// bytes fans out — so fault injection and recovery counters are
// byte-identical to a serial open. 1 forces a fully serial replay.
func WithReplayWorkers(n int) DiskOption {
	return func(o *diskOptions) { o.replayWorkers = n }
}

// DiskStore is the disk-backed Store implementation. Its concurrency
// contract matches *Database: concurrent readers are safe, mutations must
// be serialized by the caller. Forks and snapshots share shard state
// copy-on-write and the symbol table outright.
type DiskStore struct {
	dir      string
	schema   *schema.Schema
	nshards  int
	version  int
	fs       faultfs.FS
	id       uint64
	gen      uint64
	syms     *symtab
	rels     map[string]*diskRel
	relNames []string // sorted; fixes file-op order for deterministic fault injection

	// Recovery counters, frozen at open (surfaced via Stats).
	tornTails       int64
	tornBytes       int64
	recordsReplayed int64
	leftoverQuar    int // *.quarantined files present in the dir at open

	// Compaction counters (surfaced via Stats).
	compactRuns      int64
	compactShards    int64
	compactReclaimed int64

	// detached marks forks and snapshot backings: in-memory overlays that
	// never touch the segment files (their edits are not durable — the
	// cleaner's working copies and the WAL cover durability above).
	detached bool
	closed   bool
	err      error // first append/fsync failure; sticky, poisons mutations
}

type diskRel struct {
	store  *DiskStore
	name   string
	arity  int
	shards []*diskShard
}

type diskShard struct {
	file    faultfs.File  // nil on detached stores
	w       *bufio.Writer // nil iff file is nil
	state   *shardState
	shared  atomic.Bool // state may be shared with a fork/snapshot; copy before mutating
	records int         // insert/delete records in the segment (file + buffer)
	dirty   bool        // records appended since the last commit marker (v2)
}

// shardState is one shard's in-memory contents: interned tuples keyed by
// their packed-ID bytes, plus per-column value→keys indexes.
type shardState struct {
	tuples map[string][]uint32
	index  []map[uint32]map[string]int
}

func newShardState(arity int) *shardState {
	st := &shardState{
		tuples: make(map[string][]uint32),
		index:  make([]map[uint32]map[string]int, arity),
	}
	for i := range st.index {
		st.index[i] = make(map[uint32]map[string]int)
	}
	return st
}

// packKey renders interned IDs as a compact fixed-width map key.
func packKey(ids []uint32) string {
	b := make([]byte, 4*len(ids))
	for i, id := range ids {
		binary.BigEndian.PutUint32(b[4*i:], id)
	}
	return string(b)
}

// shardOf routes a tuple to a shard by hashing its string key — stable
// across reopens and independent of symbol-ID assignment order.
func shardOf(tupleKey string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(tupleKey))
	return int(h.Sum32() % uint32(n))
}

// segName builds a segment file name for a relation shard, hex-escaping
// name bytes that are unsafe in file names.
func segName(rel string, shard int) string {
	var b []byte
	for i := 0; i < len(rel); i++ {
		c := rel[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b = append(b, c)
		} else {
			b = append(b, '%', "0123456789abcdef"[c>>4], "0123456789abcdef"[c&0xf])
		}
	}
	return fmt.Sprintf("rel-%s.%d.seg", b, shard)
}

// OpenDisk opens (creating if empty) the disk-backed store in dir for the
// given schema. shards fixes the per-relation hash fan-out on first
// creation; reopens always use the fan-out recorded in the store's
// metadata. The schema must match the one the store was created with.
// Detected corruption — as opposed to a recoverable torn tail — returns a
// *CorruptError (errors.Is ErrCorrupt), quarantines the damaged file, and
// leaves a sticky QUARANTINE marker so later opens keep failing until an
// operator intervenes (docs/OPERATIONS.md).
func OpenDisk(dir string, s *schema.Schema, shards int, opts ...DiskOption) (*DiskStore, error) {
	o := diskOptions{fs: faultfs.OS(), version: formatVersion}
	for _, opt := range opts {
		opt(&o)
	}
	if o.version < 1 || o.version > formatVersion {
		return nil, fmt.Errorf("db: unsupported store format version %d", o.version)
	}
	fsys := o.fs
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: creating store dir %s: %w", dir, err)
	}
	if err := checkQuarantine(fsys, dir); err != nil {
		return nil, err
	}
	leftoverQuar := cleanupStale(fsys, dir)

	version := o.version
	metaPath := filepath.Join(dir, diskMetaFile)
	if raw, err := fsys.ReadFile(metaPath); err == nil {
		var m diskMeta
		// The checksum self-check runs before the newer-version refusal: a
		// bit-flipped version byte must read as corruption, not as a
		// plausible future format.
		if jerr := json.Unmarshal(raw, &m); jerr != nil || m.Shards <= 0 || m.Version < 1 {
			cerr := &CorruptError{Path: metaPath, Reason: "undecodable store metadata"}
			quarantine(fsys, dir, cerr, false)
			return nil, cerr
		} else if m.Checksum != 0 && m.Checksum != metaChecksum(m.Version, m.Shards) {
			cerr := &CorruptError{Path: metaPath, Reason: "store metadata checksum mismatch"}
			quarantine(fsys, dir, cerr, false)
			return nil, cerr
		} else if m.Version > formatVersion {
			return nil, fmt.Errorf("db: store %s uses format version %d, newer than this binary supports (%d)", dir, m.Version, formatVersion)
		} else if m.Version >= 2 && m.Checksum == 0 {
			cerr := &CorruptError{Path: metaPath, Reason: "v2 store metadata missing its checksum"}
			quarantine(fsys, dir, cerr, false)
			return nil, cerr
		}
		shards = m.Shards
		version = m.Version
	} else if os.IsNotExist(err) {
		if shards <= 0 {
			shards = DefaultShards
		}
		m := diskMeta{Version: version, Shards: shards}
		if version >= 2 {
			m.Checksum = metaChecksum(m.Version, m.Shards)
		}
		if err := writeMetaAtomic(fsys, dir, m); err != nil {
			return nil, fmt.Errorf("db: writing store metadata: %w", err)
		}
	} else {
		return nil, fmt.Errorf("db: reading store metadata: %w", err)
	}

	syms, symRcv, err := openSymtab(fsys, filepath.Join(dir, diskSymsFile), version)
	if err != nil {
		var cerr *CorruptError
		if errors.As(err, &cerr) {
			quarantine(fsys, dir, cerr, true)
		}
		return nil, err
	}
	ds := &DiskStore{
		dir:          dir,
		schema:       s,
		nshards:      shards,
		version:      version,
		fs:           fsys,
		id:           lastDBID.Add(1),
		syms:         syms,
		rels:         make(map[string]*diskRel, s.Len()),
		relNames:     append([]string(nil), s.Names()...),
		leftoverQuar: leftoverQuar,
	}
	sort.Strings(ds.relNames)
	ds.recordsReplayed += symRcv.records
	ds.tornBytes += symRcv.tornBytes
	if symRcv.tornBytes > 0 {
		ds.tornTails++
	}
	// Segment replay is split into three passes so the parse — the CPU-bound
	// part of a large open — can fan out across replayWorkers goroutines
	// while every file operation stays serial and in sorted relation order
	// (the order deterministic fault injection counts on). Pass 1 reads all
	// segment bytes, pass 2 parses them in parallel (replayShard is pure),
	// pass 3 aggregates counters, surfaces the first error in segment order,
	// and opens the append handles.
	type pendingShard struct {
		rel   *diskRel
		idx   int
		path  string
		arity int
		raw   []byte
		rep   shardReplay
	}
	var pend []*pendingShard
	for _, name := range ds.relNames {
		rel, _ := s.Relation(name)
		dr := &diskRel{store: ds, name: name, arity: rel.Arity(), shards: make([]*diskShard, shards)}
		ds.rels[name] = dr
		for i := 0; i < shards; i++ {
			path := filepath.Join(dir, segName(name, i))
			raw, err := fsys.ReadFile(path)
			if err != nil && !os.IsNotExist(err) {
				ds.Close()
				return nil, fmt.Errorf("db: reading segment %s: %w", path, err)
			}
			pend = append(pend, &pendingShard{rel: dr, idx: i, path: path, arity: rel.Arity(), raw: raw})
		}
	}
	symCount := uint32(ds.syms.size())
	workers := o.replayWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pend) {
		workers = len(pend)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		work := make(chan *pendingShard)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range work {
					p.rep = replayShard(p.raw, version, p.arity, symCount, p.path)
					p.raw = nil
				}
			}()
		}
		for _, p := range pend {
			work <- p
		}
		close(work)
		wg.Wait()
	} else {
		for _, p := range pend {
			p.rep = replayShard(p.raw, version, p.arity, symCount, p.path)
			p.raw = nil
		}
	}
	for _, p := range pend {
		sh, err := ds.finishShard(p.path, p.rep)
		if err != nil {
			ds.Close()
			var cerr *CorruptError
			if errors.As(err, &cerr) {
				quarantine(fsys, dir, cerr, true)
			}
			return nil, err
		}
		p.rel.shards[p.idx] = sh
	}
	if ds.tornTails > 0 {
		rec().Add(MetricRecoveryTornTails, ds.tornTails)
		rec().Add(MetricRecoveryTornBytes, ds.tornBytes)
	}
	rec().Add(MetricRecoveryRecords, ds.recordsReplayed)
	return ds, nil
}

// cleanupStale removes temp files left by a crash mid-install (metadata
// or compaction rewrites that never reached their rename) and counts the
// *.quarantined files an operator has not yet dealt with.
func cleanupStale(fsys faultfs.FS, dir string) (quarantined int) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		name := e.Name()
		if strings.Contains(name, ".tmp-") || strings.Contains(name, ".compact-") {
			_ = fsys.Remove(filepath.Join(dir, name))
		}
		if strings.HasSuffix(name, ".quarantined") {
			quarantined++
		}
	}
	return quarantined
}

// writeMetaAtomic installs the store descriptor via temp file + fsync +
// rename + directory fsync, so a crash can never leave a torn store.json.
func writeMetaAtomic(fsys faultfs.FS, dir string, m diskMeta) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, diskMetaFile+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		_ = fsys.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = fsys.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = fsys.Remove(tmpName)
		return err
	}
	if err := faultfs.RenameAndSyncDir(fsys, tmpName, filepath.Join(dir, diskMetaFile)); err != nil {
		_ = fsys.Remove(tmpName)
		return err
	}
	return nil
}

// shardReplay is the pure result of parsing one segment's bytes.
type shardReplay struct {
	state     *shardState
	records   int   // insert/delete records replayed
	good      int   // byte offset of the last intact record's end
	tornBytes int64 // bytes truncated from a torn tail (0 if clean)
	err       error // *CorruptError on any non-tail decode failure
}

// replayShard parses one segment file's bytes into a fresh shard state. A
// torn tail (incomplete final record with nothing valid after it) is marked
// for truncation; under the v2 format any other decode failure is
// corruption (record.go documents the classification argument). The
// function touches no file or store state, so shards replay in parallel.
func replayShard(raw []byte, version, arity int, symCount uint32, path string) shardReplay {
	rep := shardReplay{state: newShardState(arity)}
	for off := 0; off < len(raw); {
		r, perr := parseSegRecord(raw, off, version, arity, symCount)
		if perr != nil {
			if inv, ok := perr.(*invalidRecord); ok {
				rep.err = &CorruptError{Path: path, Offset: int64(off), Reason: inv.reason}
				return rep
			}
			if version >= 2 && resyncSeg(raw, off+1, version, arity, symCount) {
				rep.err = &CorruptError{Path: path, Offset: int64(off),
					Reason: "incomplete record followed by intact records"}
				return rep
			}
			rep.tornBytes = int64(len(raw) - rep.good)
			break
		}
		switch r.op {
		case opInsert:
			rep.state.insert(packKey(r.ids), r.ids)
			rep.records++
		case opDelete:
			rep.state.delete(packKey(r.ids))
			rep.records++
		}
		off += r.n
		rep.good = off
	}
	return rep
}

// finishShard folds one shard's replay into the store counters and opens
// its append handle, truncating any torn tail. Called serially in segment
// order so errors and counters land deterministically.
func (s *DiskStore) finishShard(path string, rep shardReplay) (*diskShard, error) {
	if rep.err != nil {
		return nil, rep.err
	}
	if rep.tornBytes > 0 {
		s.tornTails++
		s.tornBytes += rep.tornBytes
	}
	s.recordsReplayed += int64(rep.records)
	f, err := s.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: opening segment %s: %w", path, err)
	}
	if err := f.Truncate(int64(rep.good)); err != nil {
		f.Close()
		return nil, fmt.Errorf("db: truncating torn segment tail %s: %w", path, err)
	}
	if _, err := f.Seek(int64(rep.good), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("db: seeking segment %s: %w", path, err)
	}
	return &diskShard{file: f, w: bufio.NewWriter(f), state: rep.state, records: rep.records}, nil
}

// decodeRecord parses a segment payload: op byte + arity interned IDs, all
// IDs below the symbol-table size, no trailing bytes.
func decodeRecord(payload []byte, arity int, symCount uint32) ([]uint32, bool) {
	if len(payload) < 1 {
		return nil, false
	}
	op := payload[0]
	if op != opInsert && op != opDelete {
		return nil, false
	}
	rest := payload[1:]
	ids := make([]uint32, arity)
	for i := 0; i < arity; i++ {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v >= uint64(symCount) {
			return nil, false
		}
		ids[i] = uint32(v)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, false
	}
	return ids, true
}

// insert/delete maintain one shard state's tuple map and indexes. They are
// idempotent, mirroring the set semantics of the in-memory relation.
func (st *shardState) insert(key string, ids []uint32) bool {
	if _, ok := st.tuples[key]; ok {
		return false
	}
	st.tuples[key] = ids
	for col, id := range ids {
		m := st.index[col][id]
		if m == nil {
			m = make(map[string]int)
			st.index[col][id] = m
		}
		m[key] = 1
	}
	return true
}

func (st *shardState) delete(key string) bool {
	ids, ok := st.tuples[key]
	if !ok {
		return false
	}
	delete(st.tuples, key)
	for col, id := range ids {
		if m := st.index[col][id]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(st.index[col], id)
			}
		}
	}
	return true
}

// clone deep-copies the state's maps (tuple ID slices stay shared — they
// are immutable once inserted).
func (st *shardState) clone() *shardState {
	out := &shardState{
		tuples: make(map[string][]uint32, len(st.tuples)),
		index:  make([]map[uint32]map[string]int, len(st.index)),
	}
	for k, ids := range st.tuples {
		out.tuples[k] = ids
	}
	for col := range st.index {
		out.index[col] = make(map[uint32]map[string]int, len(st.index[col]))
		for id, set := range st.index[col] {
			ns := make(map[string]int, len(set))
			for k, c := range set {
				ns[k] = c
			}
			out.index[col][id] = ns
		}
	}
	return out
}

// materialize gives the shard exclusive ownership of its state before a
// mutation (copy-on-write, as Relation.materialize).
func (sh *diskShard) materialize() {
	if !sh.shared.Load() {
		return
	}
	sh.state = sh.state.clone()
	sh.shared.Store(false)
}

// appendRecord buffers one segment record; new symbols referenced by it
// were already flushed by symtab.intern.
func (sh *diskShard) appendRecord(version int, op byte, ids []uint32) error {
	if _, err := sh.w.Write(appendSegRecord(nil, version, op, ids)); err != nil {
		return err
	}
	if op != opCommit {
		sh.records++
		sh.dirty = true
	}
	return nil
}

// --- Store interface ---

// ID returns the store's process-unique identity (fresh on every open, so
// evaluation caches can never confuse two opens of the same directory).
func (s *DiskStore) ID() uint64 { return s.id }

// Generation returns the edit-generation counter. It starts at zero on
// every open; see Database.Generation for the caching contract.
func (s *DiskStore) Generation() uint64 { return s.gen }

// Schema returns the store's schema.
func (s *DiskStore) Schema() *schema.Schema { return s.schema }

// Err returns the sticky write-path error, if any: once an append, flush,
// or fsync has failed, every further mutation and Sync fails with it, and
// health checks (server /readyz) surface it.
func (s *DiskStore) Err() error { return s.err }

// Rel returns the named relation's read view, or nil if unknown.
func (s *DiskStore) Rel(name string) Rel {
	if r := s.rels[name]; r != nil {
		return r
	}
	return nil
}

// Has reports whether the fact is present.
func (s *DiskStore) Has(f Fact) bool {
	r := s.rels[f.Rel]
	return r != nil && r.Has(f.Args)
}

// Len returns the total fact count.
func (s *DiskStore) Len() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Facts returns every fact in deterministic order.
func (s *DiskStore) Facts() []Fact {
	out := make([]Fact, 0, s.Len())
	for _, n := range s.relNames {
		for _, t := range s.rels[n].Tuples() {
			out = append(out, Fact{Rel: n, Args: t})
		}
	}
	return out
}

// InsertFact adds the fact, appending a segment record first so the
// in-memory state never runs ahead of what a reopen can recover. A failed
// append poisons the store (sticky error), mirroring the WAL contract.
func (s *DiskStore) InsertFact(f Fact) (bool, error) {
	r := s.rels[f.Rel]
	if r == nil {
		return false, fmt.Errorf("db: unknown relation %q", f.Rel)
	}
	if len(f.Args) != r.arity {
		return false, fmt.Errorf("db: arity mismatch for %s: got %d, want %d", f.Rel, len(f.Args), r.arity)
	}
	if s.err != nil {
		return false, s.err
	}
	ids := make([]uint32, len(f.Args))
	for i, v := range f.Args {
		id, err := s.syms.intern(v)
		if err != nil {
			s.err = err
			return false, err
		}
		ids[i] = id
	}
	key := packKey(ids)
	sh := r.shards[shardOf(f.Args.Key(), s.nshards)]
	if _, ok := sh.state.tuples[key]; ok {
		return false, nil
	}
	if !s.detached {
		if err := sh.appendRecord(s.version, opInsert, ids); err != nil {
			s.err = fmt.Errorf("db: appending segment record: %w", err)
			return false, s.err
		}
	}
	sh.materialize()
	sh.state.insert(key, ids)
	s.gen++
	return true, nil
}

// DeleteFact removes the fact, returning true if it was present.
func (s *DiskStore) DeleteFact(f Fact) (bool, error) {
	r := s.rels[f.Rel]
	if r == nil {
		return false, fmt.Errorf("db: unknown relation %q", f.Rel)
	}
	if len(f.Args) != r.arity {
		return false, nil
	}
	if s.err != nil {
		return false, s.err
	}
	ids := make([]uint32, len(f.Args))
	for i, v := range f.Args {
		id, ok := s.syms.lookup(v)
		if !ok {
			return false, nil // a never-interned constant cannot be stored
		}
		ids[i] = id
	}
	key := packKey(ids)
	sh := r.shards[shardOf(f.Args.Key(), s.nshards)]
	if _, ok := sh.state.tuples[key]; !ok {
		return false, nil
	}
	if !s.detached {
		if err := sh.appendRecord(s.version, opDelete, ids); err != nil {
			s.err = fmt.Errorf("db: appending segment record: %w", err)
			return false, s.err
		}
	}
	sh.materialize()
	sh.state.delete(key)
	s.gen++
	return true, nil
}

// Apply applies one edit.
func (s *DiskStore) Apply(e Edit) (bool, error) {
	if e.Op == Insert {
		return s.InsertFact(e.Fact)
	}
	return s.DeleteFact(e.Fact)
}

// ApplyAll applies the edits in order, stopping at the first error.
func (s *DiskStore) ApplyAll(edits []Edit) (int, error) {
	changed := 0
	for _, e := range edits {
		ch, err := s.Apply(e)
		if err != nil {
			return changed, err
		}
		if ch {
			changed++
		}
	}
	return changed, nil
}

// forkDetached builds the copy-on-write in-memory overlay shared by Fork
// and Snapshot: same symbol table, shared shard states.
func (s *DiskStore) forkDetached() *DiskStore {
	out := &DiskStore{
		dir:      s.dir,
		schema:   s.schema,
		nshards:  s.nshards,
		version:  s.version,
		fs:       s.fs,
		id:       lastDBID.Add(1),
		syms:     s.syms,
		rels:     make(map[string]*diskRel, len(s.rels)),
		relNames: s.relNames,
		detached: true,
	}
	for name, r := range s.rels {
		nr := &diskRel{store: out, name: r.name, arity: r.arity, shards: make([]*diskShard, len(r.shards))}
		for i, sh := range r.shards {
			sh.shared.Store(true)
			c := &diskShard{state: sh.state}
			c.shared.Store(true)
			nr.shards[i] = c
		}
		out.rels[name] = nr
	}
	return out
}

// Fork returns a mutable copy-on-write copy with a fresh identity at
// generation zero. Forks are detached: their edits live in memory only (the
// cleaner's working copies don't need segment durability — the WAL above
// journals whatever should survive).
func (s *DiskStore) Fork() Store { return s.forkDetached() }

// Snapshot captures an immutable read view at the current generation,
// reporting the live store's identity so cache entries are shared at equal
// generations. Like every mutation, Snapshot must be serialized against
// other writes; afterwards the snapshot reads safely while edits land.
func (s *DiskStore) Snapshot() Snapshot {
	return &diskSnapshot{d: s.forkDetached(), id: s.id, gen: s.gen}
}

// Stats describes the store: per-relation fact counts, the on-disk
// footprint (current file sizes plus bytes still buffered), per-shard
// live/dead record counts with garbage ratios, and the recovery and
// compaction counters.
func (s *DiskStore) Stats() Stats {
	st := Stats{
		Backend:    "disk",
		Generation: s.gen,
		Relations:  make(map[string]int, len(s.rels)),
		Shards:     s.nshards,
		Symbols:    s.syms.size(),
	}
	for n, r := range s.rels {
		st.Relations[n] = r.Len()
		st.TotalFacts += r.Len()
	}
	if s.detached {
		return st
	}
	st.FormatVersion = s.version
	st.TornTails = s.tornTails
	st.TornBytesTruncated = s.tornBytes
	st.RecordsReplayed = s.recordsReplayed
	st.QuarantinedFiles = s.leftoverQuar
	st.CompactionRuns = s.compactRuns
	st.CompactionReclaimedBytes = s.compactReclaimed
	totalRecords, totalDead := 0, 0
	for _, name := range s.relNames {
		r := s.rels[name]
		for i, sh := range r.shards {
			if sh.file == nil {
				continue
			}
			var bytes int64
			if fi, err := sh.file.Stat(); err == nil {
				bytes = fi.Size()
			}
			bytes += int64(sh.w.Buffered())
			st.DiskBytes += bytes
			live := len(sh.state.tuples)
			dead := sh.records - live
			seg := SegmentStat{Relation: name, Shard: i, Live: live, Dead: dead, Bytes: bytes}
			if sh.records > 0 {
				seg.GarbageRatio = float64(dead) / float64(sh.records)
			}
			st.Segments = append(st.Segments, seg)
			totalRecords += sh.records
			totalDead += dead
		}
	}
	if totalRecords > 0 {
		st.GarbageRatio = float64(totalDead) / float64(totalRecords)
	}
	if fi, err := s.fs.Stat(filepath.Join(s.dir, diskSymsFile)); err == nil {
		st.DiskBytes += fi.Size()
	}
	if fi, err := s.fs.Stat(filepath.Join(s.dir, diskMetaFile)); err == nil {
		st.DiskBytes += fi.Size()
	}
	return st
}

// Sync flushes every buffered segment record and fsyncs the symbol table
// and all segment files: after Sync, nothing applied so far can be lost.
// Under the v2 format each dirty file first gets a commit marker, so the
// synced region always ends with a valid record (the torn-vs-corrupt
// classifier depends on this — record.go). Flush and fsync failures are
// both sticky: an fsync that failed may have dropped arbitrary dirty
// pages, so the store fails stop rather than risk acknowledging lost data.
func (s *DiskStore) Sync() error {
	if s.detached || s.closed {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	if err := s.syms.sync(); err != nil {
		s.err = err
		return err
	}
	for _, name := range s.relNames {
		for _, sh := range s.rels[name].shards {
			if sh.w == nil {
				continue
			}
			if s.version >= 2 && sh.dirty {
				if err := sh.appendRecord(s.version, opCommit, nil); err != nil {
					s.err = fmt.Errorf("db: appending commit marker: %w", err)
					return s.err
				}
			}
			if err := sh.w.Flush(); err != nil {
				s.err = fmt.Errorf("db: flushing segment: %w", err)
				return s.err
			}
			if err := sh.file.Sync(); err != nil {
				s.err = fmt.Errorf("db: syncing segment: %w", err)
				return s.err
			}
			sh.dirty = false
		}
	}
	return nil
}

// Close flushes and closes every file. The store must not be used after.
func (s *DiskStore) Close() error {
	if s.detached || s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, name := range s.relNames {
		r := s.rels[name]
		if r == nil {
			continue // partially opened store (OpenDisk failure path)
		}
		for _, sh := range r.shards {
			if sh == nil || sh.file == nil {
				continue
			}
			if s.err == nil {
				if s.version >= 2 && sh.dirty {
					if err := sh.appendRecord(s.version, opCommit, nil); err != nil && first == nil {
						first = fmt.Errorf("db: appending commit marker: %w", err)
					}
				}
				if err := sh.w.Flush(); err != nil && first == nil {
					first = fmt.Errorf("db: flushing segment: %w", err)
				}
			}
			if err := sh.file.Close(); err != nil && first == nil {
				first = err
			}
			sh.file, sh.w = nil, nil
		}
	}
	if err := s.syms.close(s.err == nil); err != nil && first == nil {
		first = err
	}
	return first
}

// Crash simulates a process kill for crash-recovery tests: every file is
// closed without flushing, dropping all records buffered since the last
// Sync (or buffer spill). The store must not be used after.
func (s *DiskStore) Crash() {
	if s.detached || s.closed {
		return
	}
	s.closed = true
	for _, r := range s.rels {
		if r == nil {
			continue
		}
		for _, sh := range r.shards {
			if sh != nil && sh.file != nil {
				sh.file.Close()
				sh.file, sh.w = nil, nil
			}
		}
	}
	s.syms.close(false)
}

// --- Rel interface on diskRel ---

func (r *diskRel) Name() string { return r.name }
func (r *diskRel) Arity() int   { return r.arity }

func (r *diskRel) Len() int {
	n := 0
	for _, sh := range r.shards {
		n += len(sh.state.tuples)
	}
	return n
}

func (r *diskRel) Has(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	ids := make([]uint32, len(t))
	for i, v := range t {
		id, ok := r.store.syms.lookup(v)
		if !ok {
			return false
		}
		ids[i] = id
	}
	sh := r.shards[shardOf(t.Key(), r.store.nshards)]
	_, ok := sh.state.tuples[packKey(ids)]
	return ok
}

// resolve materializes an interned tuple back into strings.
func (r *diskRel) resolve(ids []uint32) Tuple {
	t := make(Tuple, len(ids))
	for i, id := range ids {
		t[i] = r.store.syms.str(id)
	}
	return t
}

func (r *diskRel) Tuples() []Tuple {
	out := make([]Tuple, 0, r.Len())
	for _, sh := range r.shards {
		for _, ids := range sh.state.tuples {
			out = append(out, r.resolve(ids))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (r *diskRel) Each(fn func(Tuple) bool) {
	for _, sh := range r.shards {
		for _, ids := range sh.state.tuples {
			if !fn(r.resolve(ids)) {
				return
			}
		}
	}
}

// resolveBindings interns binding values; ok = false when some bound value
// was never interned (no tuple can match).
func (r *diskRel) resolveBindings(bindings []Binding) ([]uint32, bool) {
	vals := make([]uint32, len(bindings))
	for i, b := range bindings {
		if b.Col < 0 || b.Col >= r.arity {
			return nil, false
		}
		id, ok := r.store.syms.lookup(b.Value)
		if !ok {
			return nil, false
		}
		vals[i] = id
	}
	return vals, true
}

// scanShard enumerates one shard's matching tuple keys through the most
// selective bound column's index, invoking fn for each match.
func scanShard(st *shardState, bindings []Binding, vals []uint32, fn func(key string, ids []uint32)) {
	if len(bindings) == 0 {
		for k, ids := range st.tuples {
			fn(k, ids)
		}
		return
	}
	best := -1
	bestSize := 0
	for i, b := range bindings {
		m := st.index[b.Col][vals[i]]
		if m == nil {
			return
		}
		if best == -1 || len(m) < bestSize {
			best, bestSize = i, len(m)
		}
	}
	drive := st.index[bindings[best].Col][vals[best]]
outer:
	for k := range drive {
		ids := st.tuples[k]
		for i, b := range bindings {
			if i == best {
				continue
			}
			if ids[b.Col] != vals[i] {
				continue outer
			}
		}
		fn(k, ids)
	}
}

func (r *diskRel) Scan(bindings []Binding) []Tuple {
	vals, ok := r.resolveBindings(bindings)
	if !ok {
		return nil
	}
	var out []Tuple
	for _, sh := range r.shards {
		scanShard(sh.state, bindings, vals, func(_ string, ids []uint32) {
			out = append(out, r.resolve(ids))
		})
	}
	return out
}

func (r *diskRel) MatchCount(bindings []Binding) int {
	if len(bindings) == 0 {
		return r.Len()
	}
	vals, ok := r.resolveBindings(bindings)
	if !ok {
		return 0
	}
	n := 0
	for _, sh := range r.shards {
		scanShard(sh.state, bindings, vals, func(string, []uint32) { n++ })
	}
	return n
}

// diskSnapshot is the disk store's immutable read view (see
// DiskStore.Snapshot).
type diskSnapshot struct {
	d   *DiskStore
	id  uint64
	gen uint64
}

func (s *diskSnapshot) ID() uint64             { return s.id }
func (s *diskSnapshot) Generation() uint64     { return s.gen }
func (s *diskSnapshot) Schema() *schema.Schema { return s.d.Schema() }
func (s *diskSnapshot) Rel(name string) Rel    { return s.d.Rel(name) }
func (s *diskSnapshot) Has(f Fact) bool        { return s.d.Has(f) }
func (s *diskSnapshot) Len() int               { return s.d.Len() }
func (s *diskSnapshot) Facts() []Fact          { return s.d.Facts() }
func (s *diskSnapshot) Fork() Store            { return s.d.forkDetached() }

var (
	_ Store    = (*DiskStore)(nil)
	_ Snapshot = (*diskSnapshot)(nil)
	_ Rel      = (*diskRel)(nil)
)
