package db

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/schema"
)

// The disk-backed store keeps facts in per-relation append-only segment
// files, hash-sharded N ways, with constants interned to uint32 IDs through
// a shared symbol table (symtab.go). In memory each shard holds only
// interned tuples ([]uint32) plus per-column hash indexes over IDs — the
// strings themselves live once in the symbol table no matter how many
// tuples reference them, which is what lets a single instance hold tens of
// millions of facts without RAM-resident string duplication.
//
// Durability model: every mutating edit appends one record to its shard's
// segment through a buffered writer; new symbols are flushed to the OS
// before the first fact record referencing them is buffered. Sync() flushes
// and fsyncs everything — after it returns, even a machine crash loses
// nothing. A process kill between Syncs loses at most the buffered tail;
// reopening truncates each segment at its last complete, valid record
// (per-shard prefix recovery, the same torn-tail contract as the WAL).

const (
	// diskMetaFile pins the shard fan-out a store was created with; reopens
	// use it regardless of the requested shard count (records are routed by
	// hash, so the fan-out is part of the on-disk format).
	diskMetaFile = "store.json"
	diskSymsFile = "symbols.dat"

	// DefaultShards is the per-relation shard fan-out used when OpenDisk is
	// given a non-positive count.
	DefaultShards = 4

	opInsert = 1
	opDelete = 2
)

// diskMeta is the persisted store descriptor.
type diskMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// DiskStore is the disk-backed Store implementation. Its concurrency
// contract matches *Database: concurrent readers are safe, mutations must
// be serialized by the caller. Forks and snapshots share shard state
// copy-on-write and the symbol table outright.
type DiskStore struct {
	dir     string
	schema  *schema.Schema
	nshards int
	id      uint64
	gen     uint64
	syms    *symtab
	rels    map[string]*diskRel

	// detached marks forks and snapshot backings: in-memory overlays that
	// never touch the segment files (their edits are not durable — the
	// cleaner's working copies and the WAL cover durability above).
	detached bool
	closed   bool
	err      error // first segment append failure; sticky, poisons mutations
}

type diskRel struct {
	store  *DiskStore
	name   string
	arity  int
	shards []*diskShard
}

type diskShard struct {
	f      *os.File      // nil on detached stores
	w      *bufio.Writer // nil iff f is nil
	state  *shardState
	shared atomic.Bool // state may be shared with a fork/snapshot; copy before mutating
}

// shardState is one shard's in-memory contents: interned tuples keyed by
// their packed-ID bytes, plus per-column value→keys indexes.
type shardState struct {
	tuples map[string][]uint32
	index  []map[uint32]map[string]int
}

func newShardState(arity int) *shardState {
	st := &shardState{
		tuples: make(map[string][]uint32),
		index:  make([]map[uint32]map[string]int, arity),
	}
	for i := range st.index {
		st.index[i] = make(map[uint32]map[string]int)
	}
	return st
}

// packKey renders interned IDs as a compact fixed-width map key.
func packKey(ids []uint32) string {
	b := make([]byte, 4*len(ids))
	for i, id := range ids {
		binary.BigEndian.PutUint32(b[4*i:], id)
	}
	return string(b)
}

// shardOf routes a tuple to a shard by hashing its string key — stable
// across reopens and independent of symbol-ID assignment order.
func shardOf(tupleKey string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(tupleKey))
	return int(h.Sum32() % uint32(n))
}

// segName builds a segment file name for a relation shard, hex-escaping
// name bytes that are unsafe in file names.
func segName(rel string, shard int) string {
	var b []byte
	for i := 0; i < len(rel); i++ {
		c := rel[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b = append(b, c)
		} else {
			b = append(b, '%', "0123456789abcdef"[c>>4], "0123456789abcdef"[c&0xf])
		}
	}
	return fmt.Sprintf("rel-%s.%d.seg", b, shard)
}

// OpenDisk opens (creating if empty) the disk-backed store in dir for the
// given schema. shards fixes the per-relation hash fan-out on first
// creation; reopens always use the fan-out recorded in the store's
// metadata. The schema must match the one the store was created with —
// records that no longer decode under it are discarded as torn tails.
func OpenDisk(dir string, s *schema.Schema, shards int) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: creating store dir %s: %w", dir, err)
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	metaPath := filepath.Join(dir, diskMetaFile)
	if raw, err := os.ReadFile(metaPath); err == nil {
		var m diskMeta
		if err := json.Unmarshal(raw, &m); err != nil || m.Shards <= 0 {
			return nil, fmt.Errorf("db: corrupt store metadata %s", metaPath)
		}
		shards = m.Shards
	} else if os.IsNotExist(err) {
		raw, _ := json.Marshal(diskMeta{Version: 1, Shards: shards})
		if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
			return nil, fmt.Errorf("db: writing store metadata: %w", err)
		}
	} else {
		return nil, fmt.Errorf("db: reading store metadata: %w", err)
	}

	syms, err := openSymtab(filepath.Join(dir, diskSymsFile))
	if err != nil {
		return nil, err
	}
	ds := &DiskStore{
		dir:     dir,
		schema:  s,
		nshards: shards,
		id:      lastDBID.Add(1),
		syms:    syms,
		rels:    make(map[string]*diskRel, s.Len()),
	}
	for _, name := range s.Names() {
		rel, _ := s.Relation(name)
		dr := &diskRel{store: ds, name: name, arity: rel.Arity(), shards: make([]*diskShard, shards)}
		for i := 0; i < shards; i++ {
			sh, err := ds.openShard(filepath.Join(dir, segName(name, i)), rel.Arity())
			if err != nil {
				ds.Close()
				return nil, err
			}
			dr.shards[i] = sh
		}
		ds.rels[name] = dr
	}
	return ds, nil
}

// openShard replays one segment file into a fresh shard state, truncating
// the file at its last complete, valid record (crash-recovery semantics:
// any suffix written after the last flush may be torn).
func (s *DiskStore) openShard(path string, arity int) (*diskShard, error) {
	state := newShardState(arity)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: opening segment %s: %w", path, err)
	}
	br := bufio.NewReader(f)
	good := int64(0)
	off := int64(0)
	symCount := uint32(s.syms.size())
	for {
		payloadLen, err := binary.ReadUvarint(br)
		if err != nil {
			break // EOF or a torn length header
		}
		hdrLen := uvarintLen(payloadLen)
		if payloadLen == 0 || payloadLen > uint64(1+binary.MaxVarintLen32*arity) {
			break // implausible record: treat as torn tail
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // truncated payload
		}
		ids, ok := decodeRecord(payload, arity, symCount)
		if !ok {
			break // undecodable record: discard it and everything after
		}
		op := payload[0]
		key := packKey(ids)
		if op == opInsert {
			state.insert(key, ids)
		} else {
			state.delete(key)
		}
		off += int64(hdrLen) + int64(payloadLen)
		good = off
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("db: truncating torn segment tail %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("db: seeking segment %s: %w", path, err)
	}
	return &diskShard{f: f, w: bufio.NewWriter(f), state: state}, nil
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	var b [binary.MaxVarintLen64]byte
	return binary.PutUvarint(b[:], v)
}

// decodeRecord parses a segment payload: op byte + arity interned IDs, all
// IDs below the symbol-table size, no trailing bytes.
func decodeRecord(payload []byte, arity int, symCount uint32) ([]uint32, bool) {
	if len(payload) < 1 {
		return nil, false
	}
	op := payload[0]
	if op != opInsert && op != opDelete {
		return nil, false
	}
	rest := payload[1:]
	ids := make([]uint32, arity)
	for i := 0; i < arity; i++ {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v >= uint64(symCount) {
			return nil, false
		}
		ids[i] = uint32(v)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, false
	}
	return ids, true
}

// insert/delete maintain one shard state's tuple map and indexes. They are
// idempotent, mirroring the set semantics of the in-memory relation.
func (st *shardState) insert(key string, ids []uint32) bool {
	if _, ok := st.tuples[key]; ok {
		return false
	}
	st.tuples[key] = ids
	for col, id := range ids {
		m := st.index[col][id]
		if m == nil {
			m = make(map[string]int)
			st.index[col][id] = m
		}
		m[key] = 1
	}
	return true
}

func (st *shardState) delete(key string) bool {
	ids, ok := st.tuples[key]
	if !ok {
		return false
	}
	delete(st.tuples, key)
	for col, id := range ids {
		if m := st.index[col][id]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(st.index[col], id)
			}
		}
	}
	return true
}

// clone deep-copies the state's maps (tuple ID slices stay shared — they
// are immutable once inserted).
func (st *shardState) clone() *shardState {
	out := &shardState{
		tuples: make(map[string][]uint32, len(st.tuples)),
		index:  make([]map[uint32]map[string]int, len(st.index)),
	}
	for k, ids := range st.tuples {
		out.tuples[k] = ids
	}
	for col := range st.index {
		out.index[col] = make(map[uint32]map[string]int, len(st.index[col]))
		for id, set := range st.index[col] {
			ns := make(map[string]int, len(set))
			for k, c := range set {
				ns[k] = c
			}
			out.index[col][id] = ns
		}
	}
	return out
}

// materialize gives the shard exclusive ownership of its state before a
// mutation (copy-on-write, as Relation.materialize).
func (sh *diskShard) materialize() {
	if !sh.shared.Load() {
		return
	}
	sh.state = sh.state.clone()
	sh.shared.Store(false)
}

// appendRecord buffers one segment record; new symbols referenced by it
// were already flushed by symtab.intern.
func (sh *diskShard) appendRecord(op byte, ids []uint32) error {
	payload := make([]byte, 1, 1+binary.MaxVarintLen32*len(ids))
	payload[0] = op
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id))
		payload = append(payload, tmp[:n]...)
	}
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	if _, err := sh.w.Write(tmp[:n]); err != nil {
		return err
	}
	_, err := sh.w.Write(payload)
	return err
}

// --- Store interface ---

// ID returns the store's process-unique identity (fresh on every open, so
// evaluation caches can never confuse two opens of the same directory).
func (s *DiskStore) ID() uint64 { return s.id }

// Generation returns the edit-generation counter. It starts at zero on
// every open; see Database.Generation for the caching contract.
func (s *DiskStore) Generation() uint64 { return s.gen }

// Schema returns the store's schema.
func (s *DiskStore) Schema() *schema.Schema { return s.schema }

// Rel returns the named relation's read view, or nil if unknown.
func (s *DiskStore) Rel(name string) Rel {
	if r := s.rels[name]; r != nil {
		return r
	}
	return nil
}

// Has reports whether the fact is present.
func (s *DiskStore) Has(f Fact) bool {
	r := s.rels[f.Rel]
	return r != nil && r.Has(f.Args)
}

// Len returns the total fact count.
func (s *DiskStore) Len() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Facts returns every fact in deterministic order.
func (s *DiskStore) Facts() []Fact {
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Fact, 0, s.Len())
	for _, n := range names {
		for _, t := range s.rels[n].Tuples() {
			out = append(out, Fact{Rel: n, Args: t})
		}
	}
	return out
}

// InsertFact adds the fact, appending a segment record first so the
// in-memory state never runs ahead of what a reopen can recover. A failed
// append poisons the store (sticky error), mirroring the WAL contract.
func (s *DiskStore) InsertFact(f Fact) (bool, error) {
	r := s.rels[f.Rel]
	if r == nil {
		return false, fmt.Errorf("db: unknown relation %q", f.Rel)
	}
	if len(f.Args) != r.arity {
		return false, fmt.Errorf("db: arity mismatch for %s: got %d, want %d", f.Rel, len(f.Args), r.arity)
	}
	if s.err != nil {
		return false, s.err
	}
	ids := make([]uint32, len(f.Args))
	for i, v := range f.Args {
		id, err := s.syms.intern(v)
		if err != nil {
			s.err = err
			return false, err
		}
		ids[i] = id
	}
	key := packKey(ids)
	sh := r.shards[shardOf(f.Args.Key(), s.nshards)]
	if _, ok := sh.state.tuples[key]; ok {
		return false, nil
	}
	if !s.detached {
		if err := sh.appendRecord(opInsert, ids); err != nil {
			s.err = fmt.Errorf("db: appending segment record: %w", err)
			return false, s.err
		}
	}
	sh.materialize()
	sh.state.insert(key, ids)
	s.gen++
	return true, nil
}

// DeleteFact removes the fact, returning true if it was present.
func (s *DiskStore) DeleteFact(f Fact) (bool, error) {
	r := s.rels[f.Rel]
	if r == nil {
		return false, fmt.Errorf("db: unknown relation %q", f.Rel)
	}
	if len(f.Args) != r.arity {
		return false, nil
	}
	if s.err != nil {
		return false, s.err
	}
	ids := make([]uint32, len(f.Args))
	for i, v := range f.Args {
		id, ok := s.syms.lookup(v)
		if !ok {
			return false, nil // a never-interned constant cannot be stored
		}
		ids[i] = id
	}
	key := packKey(ids)
	sh := r.shards[shardOf(f.Args.Key(), s.nshards)]
	if _, ok := sh.state.tuples[key]; !ok {
		return false, nil
	}
	if !s.detached {
		if err := sh.appendRecord(opDelete, ids); err != nil {
			s.err = fmt.Errorf("db: appending segment record: %w", err)
			return false, s.err
		}
	}
	sh.materialize()
	sh.state.delete(key)
	s.gen++
	return true, nil
}

// Apply applies one edit.
func (s *DiskStore) Apply(e Edit) (bool, error) {
	if e.Op == Insert {
		return s.InsertFact(e.Fact)
	}
	return s.DeleteFact(e.Fact)
}

// ApplyAll applies the edits in order, stopping at the first error.
func (s *DiskStore) ApplyAll(edits []Edit) (int, error) {
	changed := 0
	for _, e := range edits {
		ch, err := s.Apply(e)
		if err != nil {
			return changed, err
		}
		if ch {
			changed++
		}
	}
	return changed, nil
}

// forkDetached builds the copy-on-write in-memory overlay shared by Fork
// and Snapshot: same symbol table, shared shard states.
func (s *DiskStore) forkDetached() *DiskStore {
	out := &DiskStore{
		dir:      s.dir,
		schema:   s.schema,
		nshards:  s.nshards,
		id:       lastDBID.Add(1),
		syms:     s.syms,
		rels:     make(map[string]*diskRel, len(s.rels)),
		detached: true,
	}
	for name, r := range s.rels {
		nr := &diskRel{store: out, name: r.name, arity: r.arity, shards: make([]*diskShard, len(r.shards))}
		for i, sh := range r.shards {
			sh.shared.Store(true)
			c := &diskShard{state: sh.state}
			c.shared.Store(true)
			nr.shards[i] = c
		}
		out.rels[name] = nr
	}
	return out
}

// Fork returns a mutable copy-on-write copy with a fresh identity at
// generation zero. Forks are detached: their edits live in memory only (the
// cleaner's working copies don't need segment durability — the WAL above
// journals whatever should survive).
func (s *DiskStore) Fork() Store { return s.forkDetached() }

// Snapshot captures an immutable read view at the current generation,
// reporting the live store's identity so cache entries are shared at equal
// generations. Like every mutation, Snapshot must be serialized against
// other writes; afterwards the snapshot reads safely while edits land.
func (s *DiskStore) Snapshot() Snapshot {
	return &diskSnapshot{d: s.forkDetached(), id: s.id, gen: s.gen}
}

// Stats describes the store: per-relation fact counts and the on-disk
// footprint (current file sizes plus bytes still buffered).
func (s *DiskStore) Stats() Stats {
	st := Stats{
		Backend:    "disk",
		Generation: s.gen,
		Relations:  make(map[string]int, len(s.rels)),
		Shards:     s.nshards,
		Symbols:    s.syms.size(),
	}
	for n, r := range s.rels {
		st.Relations[n] = r.Len()
		st.TotalFacts += r.Len()
	}
	if !s.detached {
		for _, r := range s.rels {
			for _, sh := range r.shards {
				if sh.f == nil {
					continue
				}
				if fi, err := sh.f.Stat(); err == nil {
					st.DiskBytes += fi.Size()
				}
				st.DiskBytes += int64(sh.w.Buffered())
			}
		}
		if fi, err := os.Stat(filepath.Join(s.dir, diskSymsFile)); err == nil {
			st.DiskBytes += fi.Size()
		}
		if fi, err := os.Stat(filepath.Join(s.dir, diskMetaFile)); err == nil {
			st.DiskBytes += fi.Size()
		}
	}
	return st
}

// Sync flushes every buffered segment record and fsyncs the symbol table
// and all segment files: after Sync, nothing applied so far can be lost.
func (s *DiskStore) Sync() error {
	if s.detached || s.closed {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	if err := s.syms.sync(); err != nil {
		return err
	}
	for _, r := range s.rels {
		for _, sh := range r.shards {
			if sh.w == nil {
				continue
			}
			if err := sh.w.Flush(); err != nil {
				s.err = fmt.Errorf("db: flushing segment: %w", err)
				return s.err
			}
			if err := sh.f.Sync(); err != nil {
				return fmt.Errorf("db: syncing segment: %w", err)
			}
		}
	}
	return nil
}

// Close flushes and closes every file. The store must not be used after.
func (s *DiskStore) Close() error {
	if s.detached || s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, r := range s.rels {
		for _, sh := range r.shards {
			if sh.f == nil {
				continue
			}
			if err := sh.w.Flush(); err != nil && first == nil {
				first = fmt.Errorf("db: flushing segment: %w", err)
			}
			if err := sh.f.Close(); err != nil && first == nil {
				first = err
			}
			sh.f, sh.w = nil, nil
		}
	}
	if err := s.syms.close(true); err != nil && first == nil {
		first = err
	}
	return first
}

// Crash simulates a process kill for crash-recovery tests: every file is
// closed without flushing, dropping all records buffered since the last
// Sync (or buffer spill). The store must not be used after.
func (s *DiskStore) Crash() {
	if s.detached || s.closed {
		return
	}
	s.closed = true
	for _, r := range s.rels {
		for _, sh := range r.shards {
			if sh.f != nil {
				sh.f.Close()
				sh.f, sh.w = nil, nil
			}
		}
	}
	s.syms.close(false)
}

// --- Rel interface on diskRel ---

func (r *diskRel) Name() string { return r.name }
func (r *diskRel) Arity() int   { return r.arity }

func (r *diskRel) Len() int {
	n := 0
	for _, sh := range r.shards {
		n += len(sh.state.tuples)
	}
	return n
}

func (r *diskRel) Has(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	ids := make([]uint32, len(t))
	for i, v := range t {
		id, ok := r.store.syms.lookup(v)
		if !ok {
			return false
		}
		ids[i] = id
	}
	sh := r.shards[shardOf(t.Key(), r.store.nshards)]
	_, ok := sh.state.tuples[packKey(ids)]
	return ok
}

// resolve materializes an interned tuple back into strings.
func (r *diskRel) resolve(ids []uint32) Tuple {
	t := make(Tuple, len(ids))
	for i, id := range ids {
		t[i] = r.store.syms.str(id)
	}
	return t
}

func (r *diskRel) Tuples() []Tuple {
	out := make([]Tuple, 0, r.Len())
	for _, sh := range r.shards {
		for _, ids := range sh.state.tuples {
			out = append(out, r.resolve(ids))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (r *diskRel) Each(fn func(Tuple) bool) {
	for _, sh := range r.shards {
		for _, ids := range sh.state.tuples {
			if !fn(r.resolve(ids)) {
				return
			}
		}
	}
}

// resolveBindings interns binding values; ok = false when some bound value
// was never interned (no tuple can match).
func (r *diskRel) resolveBindings(bindings []Binding) ([]uint32, bool) {
	vals := make([]uint32, len(bindings))
	for i, b := range bindings {
		if b.Col < 0 || b.Col >= r.arity {
			return nil, false
		}
		id, ok := r.store.syms.lookup(b.Value)
		if !ok {
			return nil, false
		}
		vals[i] = id
	}
	return vals, true
}

// scanShard enumerates one shard's matching tuple keys through the most
// selective bound column's index, invoking fn for each match.
func scanShard(st *shardState, bindings []Binding, vals []uint32, fn func(key string, ids []uint32)) {
	if len(bindings) == 0 {
		for k, ids := range st.tuples {
			fn(k, ids)
		}
		return
	}
	best := -1
	bestSize := 0
	for i, b := range bindings {
		m := st.index[b.Col][vals[i]]
		if m == nil {
			return
		}
		if best == -1 || len(m) < bestSize {
			best, bestSize = i, len(m)
		}
	}
	drive := st.index[bindings[best].Col][vals[best]]
outer:
	for k := range drive {
		ids := st.tuples[k]
		for i, b := range bindings {
			if i == best {
				continue
			}
			if ids[b.Col] != vals[i] {
				continue outer
			}
		}
		fn(k, ids)
	}
}

func (r *diskRel) Scan(bindings []Binding) []Tuple {
	vals, ok := r.resolveBindings(bindings)
	if !ok {
		return nil
	}
	var out []Tuple
	for _, sh := range r.shards {
		scanShard(sh.state, bindings, vals, func(_ string, ids []uint32) {
			out = append(out, r.resolve(ids))
		})
	}
	return out
}

func (r *diskRel) MatchCount(bindings []Binding) int {
	if len(bindings) == 0 {
		return r.Len()
	}
	vals, ok := r.resolveBindings(bindings)
	if !ok {
		return 0
	}
	n := 0
	for _, sh := range r.shards {
		scanShard(sh.state, bindings, vals, func(string, []uint32) { n++ })
	}
	return n
}

// diskSnapshot is the disk store's immutable read view (see
// DiskStore.Snapshot).
type diskSnapshot struct {
	d   *DiskStore
	id  uint64
	gen uint64
}

func (s *diskSnapshot) ID() uint64             { return s.id }
func (s *diskSnapshot) Generation() uint64     { return s.gen }
func (s *diskSnapshot) Schema() *schema.Schema { return s.d.Schema() }
func (s *diskSnapshot) Rel(name string) Rel    { return s.d.Rel(name) }
func (s *diskSnapshot) Has(f Fact) bool        { return s.d.Has(f) }
func (s *diskSnapshot) Len() int               { return s.d.Len() }
func (s *diskSnapshot) Facts() []Fact          { return s.d.Facts() }
func (s *diskSnapshot) Fork() Store            { return s.d.forkDetached() }

var (
	_ Store    = (*DiskStore)(nil)
	_ Snapshot = (*diskSnapshot)(nil)
	_ Rel      = (*diskRel)(nil)
)
