package db

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Metric names recorded when the package is instrumented.
const (
	// MetricRecoveryTornTails counts files whose reopen found (and
	// truncated) a torn tail from a crash mid-append.
	MetricRecoveryTornTails = "db.recovery.torn_tails"
	// MetricRecoveryTornBytes counts the bytes those truncations discarded.
	MetricRecoveryTornBytes = "db.recovery.torn_bytes"
	// MetricRecoveryRecords counts segment and symbol records replayed at
	// open.
	MetricRecoveryRecords = "db.recovery.records_replayed"
	// MetricRecoveryQuarantines counts corrupt files quarantined (each one
	// also leaves the sticky QUARANTINE marker).
	MetricRecoveryQuarantines = "db.recovery.quarantines"

	// MetricCompactionRuns counts Compact calls that rewrote at least one
	// shard; MetricCompactionShards the shards rewritten;
	// MetricCompactionReclaimed the segment bytes reclaimed;
	// MetricCompactionErrors the failed compaction attempts.
	MetricCompactionRuns      = "db.compaction.runs"
	MetricCompactionShards    = "db.compaction.shards"
	MetricCompactionReclaimed = "db.compaction.reclaimed_bytes"
	MetricCompactionErrors    = "db.compaction.errors"
)

// recorder holds the process recorder the package reports into; an atomic
// pointer keeps Instrument safe to call concurrently with open stores.
var recorder atomic.Pointer[obs.Recorder]

// Instrument directs db metrics (recovery, quarantine, compaction) into r
// (nil disables). Typically called once at process start.
func Instrument(r *obs.Recorder) { recorder.Store(r) }

// rec returns the active recorder; nil is valid, obs methods are nil-safe.
func rec() *obs.Recorder { return recorder.Load() }
