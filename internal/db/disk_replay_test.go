package db

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// buildReplayStore populates a multi-shard store with inserts, deletes, and
// re-inserts so replay has real work (live tuples, dead records, shared
// symbols) and then closes it.
func buildReplayStore(tb testing.TB, dir string, facts int) {
	tb.Helper()
	ds, err := OpenDisk(dir, testSchema(), 4)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < facts; i++ {
		if _, err := ds.InsertFact(NewFact("Teams", fmt.Sprintf("t%d", i), fmt.Sprintf("c%d", i%7))); err != nil {
			tb.Fatal(err)
		}
		if _, err := ds.InsertFact(NewFact("Goals", fmt.Sprintf("p%d", i), fmt.Sprintf("d%d", i%13))); err != nil {
			tb.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := ds.DeleteFact(NewFact("Goals", fmt.Sprintf("p%d", i), fmt.Sprintf("d%d", i%13))); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := ds.Sync(); err != nil {
		tb.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		tb.Fatal(err)
	}
}

// shardFingerprint flattens every shard's replayed state into a sorted,
// comparable form: packed tuple keys per (relation, shard).
func shardFingerprint(ds *DiskStore) map[string][]string {
	fp := make(map[string][]string)
	for name, rel := range ds.rels {
		for i, sh := range rel.shards {
			keys := make([]string, 0, len(sh.state.tuples))
			for k := range sh.state.tuples {
				keys = append(keys, fmt.Sprintf("%x", k))
			}
			sort.Strings(keys)
			fp[fmt.Sprintf("%s.%d", name, i)] = keys
		}
	}
	return fp
}

// TestDiskReplayWorkersParity: the parallel open replays every segment to a
// state byte-identical with a fully serial open — same shard contents, same
// recovery counters, same torn-tail truncation — including over a store
// with a torn segment tail.
func TestDiskReplayWorkersParity(t *testing.T) {
	dir := t.TempDir()
	buildReplayStore(t, dir, 400)

	// Tear one segment's tail: append the first half of a real record — an
	// incomplete final record that replay must truncate identically in both
	// modes.
	seg := filepath.Join(dir, segName("Teams", 1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	first, perr := parseSegRecord(raw, 0, formatVersion, 2, ^uint32(0))
	if perr != nil {
		t.Fatalf("parsing first segment record: %v", perr)
	}
	tear := func() {
		f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(raw[:first.n/2]); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	tear()
	serial, err := OpenDisk(dir, testSchema(), 0, WithReplayWorkers(1))
	if err != nil {
		t.Fatalf("serial open: %v", err)
	}
	serialFP := shardFingerprint(serial)
	serialStats := serial.Stats()
	serialFacts := factStrings(serial)
	serial.Close()

	// Opening truncates the torn tail away; tear it again so the parallel
	// open replays the same bytes the serial open did.
	tear()
	parallel, err := OpenDisk(dir, testSchema(), 0, WithReplayWorkers(8))
	if err != nil {
		t.Fatalf("parallel open: %v", err)
	}
	defer parallel.Close()
	if got := shardFingerprint(parallel); !reflect.DeepEqual(got, serialFP) {
		t.Error("parallel replay produced different shard contents than serial replay")
	}
	ps := parallel.Stats()
	if ps.TornTails != serialStats.TornTails || ps.TornBytesTruncated != serialStats.TornBytesTruncated ||
		ps.RecordsReplayed != serialStats.RecordsReplayed || ps.TotalFacts != serialStats.TotalFacts {
		t.Errorf("recovery counters diverge: parallel {torn %d/%dB, replayed %d, facts %d} vs serial {torn %d/%dB, replayed %d, facts %d}",
			ps.TornTails, ps.TornBytesTruncated, ps.RecordsReplayed, ps.TotalFacts,
			serialStats.TornTails, serialStats.TornBytesTruncated, serialStats.RecordsReplayed, serialStats.TotalFacts)
	}
	if serialStats.TornTails == 0 {
		t.Error("test setup: expected at least one torn tail")
	}
	if got := factStrings(parallel); !reflect.DeepEqual(got, serialFacts) {
		t.Error("parallel replay produced a different fact set than serial replay")
	}
	// The parallel-opened store is fully writable afterwards.
	if _, err := parallel.InsertFact(NewFact("Teams", "postopen", "X")); err != nil {
		t.Errorf("insert after parallel open: %v", err)
	}
}

func factStrings(s Store) []string {
	var out []string
	for _, f := range s.Facts() {
		out = append(out, f.String())
	}
	sort.Strings(out)
	return out
}

// BenchmarkDiskOpen measures open-time segment replay serial vs parallel
// over the same populated store.
func BenchmarkDiskOpen(b *testing.B) {
	dir := b.TempDir()
	buildReplayStore(b, dir, 5000)
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds, err := OpenDisk(dir, testSchema(), 0, WithReplayWorkers(bench.workers))
				if err != nil {
					b.Fatal(err)
				}
				ds.Close()
			}
		})
	}
}
