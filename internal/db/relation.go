package db

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Relation is an in-memory set of same-arity tuples with per-column hash
// indexes. Indexes are maintained incrementally on insert/delete and used by
// the evaluator for index-nested-loop joins.
//
// Clone is copy-on-write: a clone shares the tuple and index maps with its
// source until either side mutates, at which point the mutating side copies
// them first (see materialize). Cloning counts as a read — it may run
// concurrently with other reads and clones of the same relation (the shared
// flag is atomic for that reason); mutations must be serialized against
// reads by the caller, as everywhere in the package.
type Relation struct {
	name   string
	arity  int
	tuples map[string]Tuple            // key -> tuple
	index  []map[string]map[string]int // column -> value -> set of tuple keys (value is refcount placeholder, always 1)
	shared atomic.Bool                 // maps may be shared with a COW clone; copy before mutating
}

// NewRelation creates an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation {
	r := &Relation{
		name:   name,
		arity:  arity,
		tuples: make(map[string]Tuple),
		index:  make([]map[string]map[string]int, arity),
	}
	for i := range r.index {
		r.index[i] = make(map[string]map[string]int)
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the relation arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Has reports whether the tuple is present.
func (r *Relation) Has(t Tuple) bool {
	_, ok := r.tuples[t.Key()]
	return ok
}

// Insert adds the tuple, returning true if it was not already present.
// It panics on arity mismatch: callers validate against the schema first.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("db: arity mismatch inserting %v into %s/%d", t, r.name, r.arity))
	}
	k := t.Key()
	if _, ok := r.tuples[k]; ok {
		return false
	}
	r.materialize()
	t = t.Clone()
	r.tuples[k] = t
	for col, v := range t {
		m := r.index[col][v]
		if m == nil {
			m = make(map[string]int)
			r.index[col][v] = m
		}
		m[k] = 1
	}
	return true
}

// Delete removes the tuple, returning true if it was present.
func (r *Relation) Delete(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	k := t.Key()
	old, ok := r.tuples[k]
	if !ok {
		return false
	}
	r.materialize()
	delete(r.tuples, k)
	for col, v := range old {
		if m := r.index[col][v]; m != nil {
			delete(m, k)
			if len(m) == 0 {
				delete(r.index[col], v)
			}
		}
	}
	return true
}

// Tuples returns all tuples in deterministic (lexicographic) order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Each calls fn for every tuple in unspecified order; fn must not mutate the
// relation. It stops early if fn returns false.
func (r *Relation) Each(fn func(Tuple) bool) {
	for _, t := range r.tuples {
		if !fn(t) {
			return
		}
	}
}

// Binding is a required (column, value) pair for an index scan.
type Binding struct {
	Col   int
	Value string
}

// Scan returns the tuples matching all bindings. With no bindings it returns
// every tuple. It starts from the most selective bound column's index and
// filters on the remaining bindings.
func (r *Relation) Scan(bindings []Binding) []Tuple {
	if len(bindings) == 0 {
		out := make([]Tuple, 0, len(r.tuples))
		for _, t := range r.tuples {
			out = append(out, t)
		}
		return out
	}
	// Pick the most selective binding to drive the scan.
	best := -1
	bestSize := 0
	for i, b := range bindings {
		if b.Col < 0 || b.Col >= r.arity {
			return nil
		}
		m := r.index[b.Col][b.Value]
		if m == nil {
			return nil
		}
		if best == -1 || len(m) < bestSize {
			best, bestSize = i, len(m)
		}
	}
	drive := r.index[bindings[best].Col][bindings[best].Value]
	out := make([]Tuple, 0, len(drive))
outer:
	for k := range drive {
		t := r.tuples[k]
		for i, b := range bindings {
			if i == best {
				continue
			}
			if t[b.Col] != b.Value {
				continue outer
			}
		}
		out = append(out, t)
	}
	return out
}

// MatchCount returns the number of tuples matching all bindings, without
// materializing them (used for join-order selectivity estimates).
func (r *Relation) MatchCount(bindings []Binding) int {
	if len(bindings) == 0 {
		return len(r.tuples)
	}
	return len(r.Scan(bindings))
}

// Clone returns an independent copy of the relation in O(1) by sharing the
// tuple and index maps copy-on-write: whichever side mutates first copies
// them (tuples themselves are immutable and stay shared forever).
func (r *Relation) Clone() *Relation {
	r.shared.Store(true)
	c := &Relation{
		name:   r.name,
		arity:  r.arity,
		tuples: r.tuples,
		index:  r.index,
	}
	c.shared.Store(true)
	return c
}

// materialize gives the relation exclusive ownership of its maps before a
// mutation: if they may be shared with a COW clone, it copies the tuple map
// and the per-column indexes. Tuples are immutable and stay shared. A
// relation that was never cloned mutates in place, exactly as before.
func (r *Relation) materialize() {
	if !r.shared.Load() {
		return
	}
	tuples := make(map[string]Tuple, len(r.tuples))
	for k, t := range r.tuples {
		tuples[k] = t
	}
	index := make([]map[string]map[string]int, r.arity)
	for col := range index {
		index[col] = make(map[string]map[string]int, len(r.index[col]))
		for v, set := range r.index[col] {
			ns := make(map[string]int, len(set))
			for k, c := range set {
				ns[k] = c
			}
			index[col][v] = ns
		}
	}
	r.tuples, r.index = tuples, index
	r.shared.Store(false)
}
