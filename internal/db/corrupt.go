package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/faultfs"
)

// ErrCorrupt is the sentinel matched by errors.Is for every detected
// storage-corruption condition: a checksum mismatch, an undecodable record
// in the middle of a segment, corrupt metadata, or a store already
// quarantined by a previous open. Torn tails are NOT corruption — they are
// the expected signature of a crash mid-append and are silently truncated.
var ErrCorrupt = errors.New("db: corrupt store")

// quarantineFile is the sticky marker written next to store.json when an
// open detects corruption. While it exists, every OpenDisk of the
// directory fails with *CorruptError instead of replaying around the
// damage and silently serving a subset of the database. Operators clear it
// per the runbook in docs/OPERATIONS.md after restoring or accepting the
// loss of the quarantined file.
const quarantineFile = "QUARANTINE"

// CorruptError reports detected corruption in one store file. It matches
// ErrCorrupt via errors.Is.
type CorruptError struct {
	// Path is the corrupt file.
	Path string
	// Offset is the byte offset of the first record that failed validation.
	Offset int64
	// Reason describes what failed (checksum mismatch, bad op, ...).
	Reason string
	// Quarantined is the path the corrupt file was moved to, or "" if it
	// was left in place (metadata corruption, or the move itself failed).
	Quarantined string
}

func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("db: corrupt store: %s@%d: %s", e.Path, e.Offset, e.Reason)
	if e.Quarantined != "" {
		msg += fmt.Sprintf(" (quarantined to %s)", e.Quarantined)
	}
	return msg
}

// Is makes errors.Is(err, ErrCorrupt) true for CorruptError values.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// quarantineRecord is the JSON body of the QUARANTINE marker.
type quarantineRecord struct {
	File        string `json:"file"`
	Offset      int64  `json:"offset"`
	Reason      string `json:"reason"`
	Quarantined string `json:"quarantined,omitempty"`
}

// quarantine makes a corruption verdict sticky: it moves the corrupt file
// aside (when move is set — metadata files stay in place for diagnosis)
// and writes the QUARANTINE marker. Both steps are best-effort — the
// caller returns the typed error regardless; a half-written marker still
// blocks reopens (see checkQuarantine).
func quarantine(fsys faultfs.FS, dir string, cerr *CorruptError, move bool) {
	if move {
		dst := cerr.Path + ".quarantined"
		if err := faultfs.RenameAndSyncDir(fsys, cerr.Path, dst); err == nil {
			cerr.Quarantined = dst
		}
	}
	raw, _ := json.Marshal(quarantineRecord{
		File:        cerr.Path,
		Offset:      cerr.Offset,
		Reason:      cerr.Reason,
		Quarantined: cerr.Quarantined,
	})
	if fsys.WriteFile(filepath.Join(dir, quarantineFile), raw, 0o644) == nil {
		_ = fsys.SyncDir(dir)
	}
	rec().Inc(MetricRecoveryQuarantines)
}

// checkQuarantine fails the open while a QUARANTINE marker exists. An
// unreadable or half-written marker still quarantines — its presence is
// the signal; the JSON body is diagnostic.
func checkQuarantine(fsys faultfs.FS, dir string) error {
	marker := filepath.Join(dir, quarantineFile)
	raw, err := fsys.ReadFile(marker)
	if err != nil {
		return nil // no marker (or unreadable dir — the real open will say so)
	}
	var q quarantineRecord
	reason := "store quarantined by a previous open"
	var off int64
	file := marker
	if json.Unmarshal(raw, &q) == nil && q.File != "" {
		file = q.File
		off = q.Offset
		reason = fmt.Sprintf("store quarantined: %s", q.Reason)
	}
	return &CorruptError{
		Path:        file,
		Offset:      off,
		Reason:      reason + fmt.Sprintf("; restore the file and remove %s to reopen", marker),
		Quarantined: q.Quarantined,
	}
}
