package db

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV serializes the database as CSV records of the form
// rel,v1,...,vk in deterministic order. The format round-trips through
// LoadCSV given a database of the same schema.
func (d *Database) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, f := range d.Facts() {
		rec := make([]string, 0, len(f.Args)+1)
		rec = append(rec, f.Rel)
		rec = append(rec, f.Args...)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("db: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV reads CSV records (rel,v1,...,vk) into the database, validating
// each record against the schema. Records are appended to existing contents.
func (d *Database) LoadCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // arity varies by relation
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("db: reading csv: %w", err)
		}
		if len(rec) < 2 {
			return fmt.Errorf("db: csv record too short: %v", rec)
		}
		if _, err := d.InsertFact(NewFact(rec[0], rec[1:]...)); err != nil {
			return err
		}
	}
}
