package db

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV serializes any reader as CSV records of the form rel,v1,...,vk
// in deterministic order. The format round-trips through LoadCSV given a
// store of the same schema.
func WriteCSV(w io.Writer, r Reader) error {
	cw := csv.NewWriter(w)
	for _, f := range r.Facts() {
		rec := make([]string, 0, len(f.Args)+1)
		rec = append(rec, f.Rel)
		rec = append(rec, f.Args...)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("db: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV reads CSV records (rel,v1,...,vk) into the store, validating each
// record against the schema. Records are appended to existing contents.
func LoadCSV(s Store, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // arity varies by relation
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("db: reading csv: %w", err)
		}
		if len(rec) < 2 {
			return fmt.Errorf("db: csv record too short: %v", rec)
		}
		if _, err := s.InsertFact(NewFact(rec[0], rec[1:]...)); err != nil {
			return err
		}
	}
}

// WriteCSV serializes the database as CSV (see the package-level WriteCSV).
func (d *Database) WriteCSV(w io.Writer) error { return WriteCSV(w, d) }

// LoadCSV reads CSV records into the database (see the package-level
// LoadCSV).
func (d *Database) LoadCSV(r io.Reader) error { return LoadCSV(d, r) }
