// Package db implements in-memory relational database instances: tuples,
// facts, indexed relations, and whole databases with edit application
// (insertions R(ā)+ and deletions R(ā)−, written D ⊕ e in the paper) and the
// symmetric-difference distance |D − D′| used to argue convergence.
//
// Values are uninterpreted constants represented as strings. Relations have
// set semantics: inserting an existing tuple or deleting an absent one is a
// no-op (edits are idempotent, §3.1 of the paper).
package db

import (
	"fmt"
	"strings"
)

// keySep separates tuple components in the internal map key. Constant values
// must not contain this byte; it is the ASCII unit separator, which never
// occurs in realistic data values.
const keySep = "\x1f"

// Tuple is an ordered list of constant values.
type Tuple []string

// Key returns a canonical map key for the tuple.
func (t Tuple) Key() string { return strings.Join(t, keySep) }

// Equal reports component-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Less imposes a total lexicographic order on tuples, used for deterministic
// output ordering.
func (t Tuple) Less(o Tuple) bool {
	for i := 0; i < len(t) && i < len(o); i++ {
		if t[i] != o[i] {
			return t[i] < o[i]
		}
	}
	return len(t) < len(o)
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string { return "(" + strings.Join(t, ", ") + ")" }

// Fact is a tuple of a named relation: the paper's R(ā).
type Fact struct {
	Rel  string
	Args Tuple
}

// NewFact builds a fact from a relation name and argument values.
func NewFact(rel string, args ...string) Fact {
	return Fact{Rel: rel, Args: Tuple(args)}
}

// Key returns a canonical map key for the fact.
func (f Fact) Key() string { return f.Rel + keySep + f.Args.Key() }

// Equal reports whether two facts denote the same tuple of the same relation.
func (f Fact) Equal(o Fact) bool { return f.Rel == o.Rel && f.Args.Equal(o.Args) }

// Clone returns an independent copy of the fact.
func (f Fact) Clone() Fact { return Fact{Rel: f.Rel, Args: f.Args.Clone()} }

// Less imposes a total order on facts: by relation name, then by tuple.
func (f Fact) Less(o Fact) bool {
	if f.Rel != o.Rel {
		return f.Rel < o.Rel
	}
	return f.Args.Less(o.Args)
}

// String renders the fact as Rel(v1, v2, ...).
func (f Fact) String() string {
	return fmt.Sprintf("%s%s", f.Rel, f.Args.String())
}

// Op is the kind of an edit: insertion or deletion.
type Op int

// Edit operations.
const (
	Insert Op = iota // R(ā)+
	Delete           // R(ā)−
)

// String renders the operation sign.
func (o Op) String() string {
	if o == Insert {
		return "+"
	}
	return "-"
}

// Edit is a single database update: R(ā)+ inserts fact R(ā), R(ā)− deletes
// it. Updates of existing tuples are modeled as a deletion followed by an
// insertion (§3.1).
type Edit struct {
	Op   Op
	Fact Fact
}

// Insertion builds an insertion edit for the given fact.
func Insertion(f Fact) Edit { return Edit{Op: Insert, Fact: f} }

// Deletion builds a deletion edit for the given fact.
func Deletion(f Fact) Edit { return Edit{Op: Delete, Fact: f} }

// String renders the edit as Rel(v1, ...)+ or Rel(v1, ...)-.
func (e Edit) String() string { return e.Fact.String() + e.Op.String() }
