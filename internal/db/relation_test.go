package db

import (
	"math/rand"
	"testing"
)

func TestRelationInsertDeleteHas(t *testing.T) {
	r := NewRelation("Teams", 2)
	if r.Len() != 0 {
		t.Fatalf("new relation not empty")
	}
	if !r.Insert(Tuple{"GER", "EU"}) {
		t.Errorf("first Insert = false")
	}
	if r.Insert(Tuple{"GER", "EU"}) {
		t.Errorf("duplicate Insert = true")
	}
	if !r.Has(Tuple{"GER", "EU"}) {
		t.Errorf("Has = false after insert")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if !r.Delete(Tuple{"GER", "EU"}) {
		t.Errorf("Delete of present tuple = false")
	}
	if r.Delete(Tuple{"GER", "EU"}) {
		t.Errorf("Delete of absent tuple = true")
	}
	if r.Has(Tuple{"GER", "EU"}) || r.Len() != 0 {
		t.Errorf("tuple still present after delete")
	}
}

func TestRelationInsertCopiesTuple(t *testing.T) {
	r := NewRelation("R", 1)
	in := Tuple{"a"}
	r.Insert(in)
	in[0] = "mutated"
	if !r.Has(Tuple{"a"}) {
		t.Errorf("relation aliased caller's tuple")
	}
}

func TestRelationInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Insert with wrong arity did not panic")
		}
	}()
	NewRelation("R", 2).Insert(Tuple{"only-one"})
}

func TestRelationTuplesSorted(t *testing.T) {
	r := NewRelation("R", 1)
	for _, v := range []string{"c", "a", "b"} {
		r.Insert(Tuple{v})
	}
	got := r.Tuples()
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if got[i][0] != w {
			t.Fatalf("Tuples()[%d] = %v, want %s", i, got[i], w)
		}
	}
}

func TestRelationScan(t *testing.T) {
	r := NewRelation("Games", 3)
	r.Insert(Tuple{"2014", "GER", "ARG"})
	r.Insert(Tuple{"2010", "ESP", "NED"})
	r.Insert(Tuple{"1990", "GER", "ARG"})

	got := r.Scan([]Binding{{Col: 1, Value: "GER"}})
	if len(got) != 2 {
		t.Fatalf("Scan(winner=GER) = %d tuples, want 2", len(got))
	}
	got = r.Scan([]Binding{{Col: 1, Value: "GER"}, {Col: 0, Value: "2014"}})
	if len(got) != 1 || got[0][2] != "ARG" {
		t.Fatalf("Scan(winner=GER,year=2014) = %v", got)
	}
	if got := r.Scan([]Binding{{Col: 1, Value: "BRA"}}); len(got) != 0 {
		t.Errorf("Scan of absent value = %v, want empty", got)
	}
	if got := r.Scan(nil); len(got) != 3 {
		t.Errorf("full Scan = %d tuples, want 3", len(got))
	}
	if got := r.Scan([]Binding{{Col: 9, Value: "x"}}); got != nil {
		t.Errorf("Scan with out-of-range column = %v, want nil", got)
	}
}

func TestRelationScanAfterDelete(t *testing.T) {
	r := NewRelation("R", 2)
	r.Insert(Tuple{"a", "1"})
	r.Insert(Tuple{"a", "2"})
	r.Delete(Tuple{"a", "1"})
	got := r.Scan([]Binding{{Col: 0, Value: "a"}})
	if len(got) != 1 || got[0][1] != "2" {
		t.Fatalf("Scan after delete = %v", got)
	}
}

func TestRelationMatchCount(t *testing.T) {
	r := NewRelation("R", 2)
	r.Insert(Tuple{"a", "1"})
	r.Insert(Tuple{"a", "2"})
	r.Insert(Tuple{"b", "1"})
	if got := r.MatchCount(nil); got != 3 {
		t.Errorf("MatchCount(nil) = %d, want 3", got)
	}
	if got := r.MatchCount([]Binding{{Col: 0, Value: "a"}}); got != 2 {
		t.Errorf("MatchCount(a) = %d, want 2", got)
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := NewRelation("R", 1)
	r.Insert(Tuple{"x"})
	c := r.Clone()
	c.Insert(Tuple{"y"})
	r.Delete(Tuple{"x"})
	if !c.Has(Tuple{"x"}) || !c.Has(Tuple{"y"}) {
		t.Errorf("clone affected by original mutation")
	}
	if r.Has(Tuple{"y"}) {
		t.Errorf("original affected by clone mutation")
	}
}

// TestRelationIndexConsistency fuzzes random insert/delete sequences and
// checks that index scans always agree with a full filter.
func TestRelationIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewRelation("R", 2)
	vals := []string{"a", "b", "c", "d"}
	ref := make(map[string]Tuple)
	for step := 0; step < 2000; step++ {
		tp := Tuple{vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]}
		if rng.Intn(2) == 0 {
			r.Insert(tp)
			ref[tp.Key()] = tp.Clone()
		} else {
			r.Delete(tp)
			delete(ref, tp.Key())
		}
		if r.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref = %d", step, r.Len(), len(ref))
		}
		// Compare an indexed scan against a naive filter.
		v := vals[rng.Intn(len(vals))]
		col := rng.Intn(2)
		got := r.Scan([]Binding{{Col: col, Value: v}})
		want := 0
		for _, tp := range ref {
			if tp[col] == v {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("step %d: Scan(col %d = %s) = %d tuples, want %d", step, col, v, len(got), want)
		}
	}
}

func TestRelationEachEarlyStop(t *testing.T) {
	r := NewRelation("R", 1)
	r.Insert(Tuple{"a"})
	r.Insert(Tuple{"b"})
	n := 0
	r.Each(func(Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("Each did not stop early: visited %d", n)
	}
}
