package db

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faultfs"
)

// FuzzSegmentReplay feeds arbitrary bytes to the segment recovery path: it
// must never panic, must classify every failure as typed corruption
// (errors.Is ErrCorrupt, sticky across reopens), and on success must reopen
// deterministically to the same facts.
func FuzzSegmentReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 9, 9}) // torn: length header promising absent bytes
	f.Add(appendSegRecord(nil, formatVersion, opInsert, []uint32{0, 1}))
	rec := appendSegRecord(nil, formatVersion, opInsert, []uint32{2, 3})
	f.Add(appendSegRecord(rec, formatVersion, opCommit, nil))
	flipped := append([]byte(nil), rec...)
	flipped[1] ^= 0x10
	f.Add(appendSegRecord(flipped, formatVersion, opCommit, nil)) // corrupt mid-file
	f.Add(appendSegRecord(nil, 1, opInsert, []uint32{0, 1}))      // v1-shaped bytes under v2

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		ds, err := OpenDisk(dir, testSchema(), 1)
		if err != nil {
			t.Fatal(err)
		}
		// Intern a handful of symbols so fuzzed IDs can be in range.
		for _, fa := range []Fact{NewFact("Teams", "A", "B"), NewFact("Teams", "C", "D")} {
			if _, err := ds.InsertFact(fa); err != nil {
				t.Fatal(err)
			}
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(dir, segName("Goals", 0))
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDisk(dir, testSchema(), 1)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open error not typed corruption: %v", err)
			}
			if _, err2 := OpenDisk(dir, testSchema(), 1); !errors.Is(err2, ErrCorrupt) {
				t.Fatalf("quarantine not sticky: second open = %v", err2)
			}
			return
		}
		facts := re.Facts()
		if err := re.Close(); err != nil {
			t.Fatalf("clean close after replay: %v", err)
		}
		re2, err := OpenDisk(dir, testSchema(), 1)
		if err != nil {
			t.Fatalf("deterministic reopen failed: %v", err)
		}
		defer re2.Close()
		if got := re2.Facts(); !reflect.DeepEqual(got, facts) {
			t.Fatalf("reopen facts differ:\n first: %v\nsecond: %v", facts, got)
		}
	})
}

// FuzzSymtabReplay feeds arbitrary bytes to the symbol-table recovery path:
// no panic, failures are typed *CorruptError, successes reopen to the same
// interned symbols.
func FuzzSymtabReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{200, 1, 'x'}) // torn tail
	f.Add(appendSymRecord(nil, formatVersion, "alpha", false))
	two := appendSymRecord(appendSymRecord(nil, formatVersion, "alpha", false), formatVersion, "", false)
	f.Add(appendSymRecord(two, formatVersion, "", true)) // two symbols + marker
	flipped := append([]byte(nil), two...)
	flipped[2] ^= 0x04
	f.Add(appendSymRecord(flipped, formatVersion, "", true))
	f.Add(appendSymRecord(nil, 1, "legacy", false)) // v1-shaped bytes under v2

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "symbols.dat")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, _, err := openSymtab(faultfs.OS(), path, formatVersion)
		if err != nil {
			var cerr *CorruptError
			if !errors.As(err, &cerr) {
				t.Fatalf("open error not *CorruptError: %v", err)
			}
			return
		}
		n := st.size()
		var syms []string
		for i := 0; i < n; i++ {
			syms = append(syms, st.str(uint32(i)))
		}
		if err := st.close(true); err != nil {
			t.Fatalf("clean close after replay: %v", err)
		}
		st2, _, err := openSymtab(faultfs.OS(), path, formatVersion)
		if err != nil {
			t.Fatalf("deterministic reopen failed: %v", err)
		}
		defer st2.close(false)
		if st2.size() != n {
			t.Fatalf("reopen size = %d, want %d", st2.size(), n)
		}
		for i, v := range syms {
			if got := st2.str(uint32(i)); got != v {
				t.Fatalf("symbol %d = %q after reopen, want %q", i, got, v)
			}
		}
	})
}
