package db

import (
	"testing"
	"testing/quick"
)

func TestTupleKeyEqual(t *testing.T) {
	a := Tuple{"GER", "EU"}
	b := Tuple{"GER", "EU"}
	c := Tuple{"GER", "SA"}
	if a.Key() != b.Key() {
		t.Errorf("equal tuples have different keys")
	}
	if a.Key() == c.Key() {
		t.Errorf("distinct tuples share a key")
	}
	if !a.Equal(b) || a.Equal(c) {
		t.Errorf("Equal mismatch")
	}
	if a.Equal(Tuple{"GER"}) {
		t.Errorf("Equal across arities")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Values that would collide under naive comma-joining.
	a := Tuple{"a,b", "c"}
	b := Tuple{"a", "b,c"}
	if a.Key() == b.Key() {
		t.Errorf("Key not injective for comma-bearing values")
	}
}

func TestTupleCloneIndependent(t *testing.T) {
	a := Tuple{"x", "y"}
	b := a.Clone()
	b[0] = "z"
	if a[0] != "x" {
		t.Errorf("Clone aliases the original")
	}
}

func TestTupleLessTotalOrder(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want bool
	}{
		{Tuple{"a"}, Tuple{"b"}, true},
		{Tuple{"b"}, Tuple{"a"}, false},
		{Tuple{"a"}, Tuple{"a", "b"}, true},
		{Tuple{"a", "b"}, Tuple{"a"}, false},
		{Tuple{"a"}, Tuple{"a"}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTupleLessProperties(t *testing.T) {
	// Irreflexivity and asymmetry via testing/quick.
	irrefl := func(vals []string) bool {
		tp := Tuple(vals)
		return !tp.Less(tp)
	}
	if err := quick.Check(irrefl, nil); err != nil {
		t.Errorf("Less not irreflexive: %v", err)
	}
	asym := func(a, b []string) bool {
		x, y := Tuple(a), Tuple(b)
		if x.Less(y) && y.Less(x) {
			return false
		}
		// Totality: for distinct tuples one direction must hold.
		if !x.Equal(y) && !x.Less(y) && !y.Less(x) {
			return false
		}
		return true
	}
	if err := quick.Check(asym, nil); err != nil {
		t.Errorf("Less not a strict total order: %v", err)
	}
}

func TestFactBasics(t *testing.T) {
	f := NewFact("Teams", "ESP", "EU")
	if f.Rel != "Teams" || len(f.Args) != 2 {
		t.Fatalf("NewFact = %+v", f)
	}
	if got, want := f.String(), "Teams(ESP, EU)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	g := NewFact("Teams", "ESP", "EU")
	if !f.Equal(g) {
		t.Errorf("Equal facts not equal")
	}
	if f.Equal(NewFact("Games", "ESP", "EU")) {
		t.Errorf("facts of different relations equal")
	}
	if f.Key() == NewFact("TeamsESP", "EU").Key() {
		t.Errorf("Key collides across rel/arg boundary")
	}
}

func TestFactLess(t *testing.T) {
	a := NewFact("A", "z")
	b := NewFact("B", "a")
	if !a.Less(b) || b.Less(a) {
		t.Errorf("Less should order by relation name first")
	}
	c := NewFact("A", "a")
	if !c.Less(a) {
		t.Errorf("Less should order by tuple within a relation")
	}
}

func TestEditString(t *testing.T) {
	ins := Insertion(NewFact("Teams", "ITA", "EU"))
	del := Deletion(NewFact("Teams", "BRA", "EU"))
	if got, want := ins.String(), "Teams(ITA, EU)+"; got != want {
		t.Errorf("insert String = %q, want %q", got, want)
	}
	if got, want := del.String(), "Teams(BRA, EU)-"; got != want {
		t.Errorf("delete String = %q, want %q", got, want)
	}
}
