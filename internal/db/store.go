package db

import (
	"fmt"

	"repro/internal/schema"
)

// Rel is the read view of one relation instance: membership, scans, and
// index-assisted match counting. Both the in-memory *Relation and the
// disk-backed sharded relation implement it; the evaluator plans its joins
// against this interface only.
type Rel interface {
	// Name returns the relation symbol.
	Name() string
	// Arity returns the number of columns.
	Arity() int
	// Len returns the number of tuples.
	Len() int
	// Has reports whether the tuple is present.
	Has(t Tuple) bool
	// Tuples returns all tuples in deterministic (lexicographic) order.
	Tuples() []Tuple
	// Each calls fn for every tuple in unspecified order until fn returns
	// false. fn must not mutate the relation.
	Each(fn func(Tuple) bool)
	// Scan returns the tuples matching all bindings (every tuple with no
	// bindings), in unspecified order.
	Scan(bindings []Binding) []Tuple
	// MatchCount returns the number of tuples matching all bindings without
	// materializing them.
	MatchCount(bindings []Binding) int
}

// Reader is the read-only storage view the evaluator and every other
// consumer of Q(D) works against. Both live stores and snapshots implement
// it. The identity pair (ID, Generation) stamps evaluation-cache entries:
// two Readers with equal IDs and generations are guaranteed to hold the
// same facts.
type Reader interface {
	// ID returns the store's process-unique identity.
	ID() uint64
	// Generation returns the edit-generation counter: it increases
	// monotonically with every mutating edit and is frozen on snapshots.
	Generation() uint64
	// Schema returns the schema the store instantiates.
	Schema() *schema.Schema
	// Rel returns the named relation's read view, or nil if the schema has
	// no such relation.
	Rel(name string) Rel
	// Has reports whether the fact is present.
	Has(f Fact) bool
	// Len returns the total number of facts across all relations.
	Len() int
	// Facts returns every fact in deterministic order (relations sorted by
	// name, tuples lexicographically).
	Facts() []Fact
}

// Snapshot is an immutable read view of a store at one generation: reads
// against it are stable while edits keep landing on the originating store.
// ID and Generation report the originating store's identity and the
// generation at capture, so evaluation-cache entries warmed through a
// snapshot stay valid for the live store at the same generation (and vice
// versa).
type Snapshot interface {
	Reader
	// Fork returns a new mutable Store seeded with the snapshot's contents.
	// Implementations use copy-on-write, so forking is O(relations · shards),
	// not O(|D|). The fork has a fresh identity at generation zero.
	Fork() Store
}

// Store is the pluggable storage API: everything the cleaning loop, the
// WAL, and the server need from the fact store. The in-memory *Database and
// the disk-backed *DiskStore implement it.
//
// The concurrency contract matches the historical *db.Database one:
// concurrent readers are safe, but mutations (InsertFact, DeleteFact,
// Apply, ApplyAll, Snapshot, Fork) must be serialized by the caller against
// both readers and each other on the same store. Snapshots and forks are
// independent stores: reading or mutating them concurrently with the
// original is safe once the Snapshot/Fork call itself has returned.
type Store interface {
	Reader
	// InsertFact adds the fact, returning true if it was newly inserted.
	// It returns an error for unknown relations or arity mismatches.
	InsertFact(f Fact) (bool, error)
	// DeleteFact removes the fact, returning true if it was present.
	DeleteFact(f Fact) (bool, error)
	// Apply applies a single edit (the paper's D ⊕ e). Edits are
	// idempotent: re-inserting or re-deleting changes nothing.
	Apply(e Edit) (changed bool, err error)
	// ApplyAll applies the edits in order, returning how many changed the
	// store. It stops at the first error.
	ApplyAll(edits []Edit) (changed int, err error)
	// Snapshot captures an immutable read view at the current generation.
	Snapshot() Snapshot
	// Fork returns a mutable copy-on-write copy with a fresh identity at
	// generation zero — the cheap replacement for the old O(|D|) Clone.
	Fork() Store
	// Stats describes the store: backend, per-relation fact counts, shard
	// fan-out, and on-disk footprint.
	Stats() Stats
	// Sync makes all applied edits durable (a no-op for purely in-memory
	// stores). After Sync returns, a process kill loses nothing.
	Sync() error
	// Close releases any resources (files, buffers). The store must not be
	// used afterwards; in-memory stores treat Close as a no-op.
	Close() error
}

// Stats describes a store for observability: the /api/v1/db endpoint and
// the qoco -dbinfo flag render it.
type Stats struct {
	// Backend is "mem" or "disk".
	Backend string `json:"backend"`
	// Generation is the current edit-generation counter.
	Generation uint64 `json:"generation"`
	// TotalFacts is the fact count across all relations.
	TotalFacts int `json:"total_facts"`
	// Relations maps each relation name to its fact count.
	Relations map[string]int `json:"relations"`
	// Shards is the hash-shard fan-out per relation (1 for mem).
	Shards int `json:"shards"`
	// Symbols is the interned-constant count (0 for mem).
	Symbols int `json:"symbols,omitempty"`
	// DiskBytes is the on-disk footprint in bytes (0 for mem).
	DiskBytes int64 `json:"disk_bytes"`

	// FormatVersion is the on-disk record format (disk stores only; 0 for
	// mem). Version 2 adds per-record CRC-32C checksums and commit markers.
	FormatVersion int `json:"format_version,omitempty"`
	// Segments reports per-shard live/dead record counts and garbage
	// ratios, sorted by (relation, shard) — the numbers the compaction
	// trigger acts on (disk stores only).
	Segments []SegmentStat `json:"segments,omitempty"`
	// GarbageRatio is dead records over total records across all segments.
	GarbageRatio float64 `json:"garbage_ratio,omitempty"`

	// Recovery counters, frozen when the store was opened.
	TornTails          int64 `json:"torn_tails,omitempty"`
	TornBytesTruncated int64 `json:"torn_bytes_truncated,omitempty"`
	RecordsReplayed    int64 `json:"records_replayed,omitempty"`
	// QuarantinedFiles counts *.quarantined files still present in the
	// store directory (corrupt files moved aside by a previous open whose
	// QUARANTINE marker an operator has since cleared).
	QuarantinedFiles int `json:"quarantined_files,omitempty"`

	// Compaction counters for this open.
	CompactionRuns           int64 `json:"compaction_runs,omitempty"`
	CompactionReclaimedBytes int64 `json:"compaction_reclaimed_bytes,omitempty"`
}

// SegmentStat describes one relation shard's segment file.
type SegmentStat struct {
	Relation string `json:"relation"`
	Shard    int    `json:"shard"`
	// Live is the tuple count; Dead the insert/delete records the segment
	// still carries for tuples that are no longer (or were re-) present —
	// the bytes compaction reclaims.
	Live int `json:"live_records"`
	Dead int `json:"dead_records"`
	// Bytes is the segment size (file plus write buffer).
	Bytes int64 `json:"bytes"`
	// GarbageRatio is Dead over total records (0 for an empty segment).
	GarbageRatio float64 `json:"garbage_ratio"`
}

// Distance returns the size of the symmetric difference |D − D′| + |D′ − D|
// between two readers — the paper's distance measure, generalized over
// storage backends.
func Distance(a, b Reader) int {
	n := 0
	for _, name := range a.Schema().Names() {
		ar, br := a.Rel(name), b.Rel(name)
		if ar != nil {
			ar.Each(func(t Tuple) bool {
				if br == nil || !br.Has(t) {
					n++
				}
				return true
			})
		}
	}
	for _, name := range b.Schema().Names() {
		ar, br := a.Rel(name), b.Rel(name)
		if br != nil {
			br.Each(func(t Tuple) bool {
				if ar == nil || !ar.Has(t) {
					n++
				}
				return true
			})
		}
	}
	return n
}

// Equal reports whether two readers contain exactly the same facts.
func Equal(a, b Reader) bool { return Distance(a, b) == 0 }

// Diff returns the edits that transform a into b: deletions of facts in
// a − b followed by insertions of facts in b − a, in deterministic order.
func Diff(a, b Reader) []Edit {
	var edits []Edit
	for _, f := range a.Facts() {
		if !b.Has(f) {
			edits = append(edits, Deletion(f))
		}
	}
	for _, f := range b.Facts() {
		if !a.Has(f) {
			edits = append(edits, Insertion(f))
		}
	}
	return edits
}

// Copy inserts every fact of src into dst, returning the number inserted.
// It is how datasets built as in-memory databases are materialized into a
// disk-backed store.
func Copy(dst Store, src Reader) (int, error) {
	n := 0
	for _, f := range src.Facts() {
		ins, err := dst.InsertFact(f)
		if err != nil {
			return n, fmt.Errorf("db: copying %v: %w", f, err)
		}
		if ins {
			n++
		}
	}
	return n, nil
}

// DeepCopy materializes any reader into a fresh in-memory Database — an
// explicit O(|D|) copy. The old Database.Clone had this cost on every call;
// Clone is now a copy-on-write fork, and DeepCopy remains for callers (and
// benchmarks) that genuinely want a physically independent instance.
func DeepCopy(r Reader) *Database {
	d := New(r.Schema())
	for _, name := range r.Schema().Names() {
		src := r.Rel(name)
		if src == nil {
			continue
		}
		dst := d.rels[name]
		src.Each(func(t Tuple) bool {
			dst.Insert(t)
			return true
		})
	}
	return d
}

// memSnapshot is the in-memory Snapshot: a copy-on-write fork of the
// Database frozen at capture, reporting the source's identity and captured
// generation so cache entries are shared with the live store at that
// generation.
type memSnapshot struct {
	d   *Database
	id  uint64
	gen uint64
}

func (s *memSnapshot) ID() uint64             { return s.id }
func (s *memSnapshot) Generation() uint64     { return s.gen }
func (s *memSnapshot) Schema() *schema.Schema { return s.d.Schema() }
func (s *memSnapshot) Rel(name string) Rel    { return s.d.Rel(name) }
func (s *memSnapshot) Has(f Fact) bool        { return s.d.Has(f) }
func (s *memSnapshot) Len() int               { return s.d.Len() }
func (s *memSnapshot) Facts() []Fact          { return s.d.Facts() }
func (s *memSnapshot) Fork() Store            { return s.d.Clone() }

// Interface conformance.
var (
	_ Store    = (*Database)(nil)
	_ Snapshot = (*memSnapshot)(nil)
	_ Rel      = (*Relation)(nil)
)
