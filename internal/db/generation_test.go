package db

import "testing"

// TestGenerationBumpsOnRealEdits: the edit-generation counter moves exactly
// when the database changes — no-op inserts of present facts and deletes of
// absent facts leave it alone. The evaluation cache's soundness rests on
// this: an entry stamped at generation g is valid iff the counter still
// reads g.
func TestGenerationBumpsOnRealEdits(t *testing.T) {
	d := New(testSchema())
	if d.Generation() != 0 {
		t.Fatalf("fresh database at generation %d, want 0", d.Generation())
	}
	f := NewFact("Teams", "GER", "EU")

	if _, err := d.InsertFact(f); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 1 {
		t.Errorf("after insert: generation %d, want 1", d.Generation())
	}
	if _, err := d.InsertFact(f); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 1 {
		t.Errorf("after duplicate insert: generation %d, want 1 (no-op must not bump)", d.Generation())
	}
	if _, err := d.DeleteFact(f); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 2 {
		t.Errorf("after delete: generation %d, want 2", d.Generation())
	}
	if _, err := d.DeleteFact(f); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 2 {
		t.Errorf("after deleting absent fact: generation %d, want 2 (no-op must not bump)", d.Generation())
	}

	// Apply and ApplyAll route through the same counters.
	if _, err := d.Apply(Insertion(f)); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 3 {
		t.Errorf("after Apply(insert): generation %d, want 3", d.Generation())
	}
	changed, err := d.ApplyAll([]Edit{
		Deletion(f), // changes
		Deletion(f), // no-op
		Insertion(NewFact("Goals", "Pirlo", "09.07.2006")), // changes
	})
	if err != nil || changed != 2 {
		t.Fatalf("ApplyAll = %d, %v; want 2, nil", changed, err)
	}
	if d.Generation() != 5 {
		t.Errorf("after ApplyAll: generation %d, want 5", d.Generation())
	}

	// Failed edits (unknown relation) must not bump either.
	if _, err := d.InsertFact(NewFact("Nope", "x")); err == nil {
		t.Fatal("insert into unknown relation: want error")
	}
	if d.Generation() != 5 {
		t.Errorf("after failed insert: generation %d, want 5", d.Generation())
	}
}

// TestCloneFreshIdentityAndGeneration: clones carry a new process-unique ID
// and restart at generation zero, so cache entries of the original can never
// be served for the clone (and vice versa).
func TestCloneFreshIdentityAndGeneration(t *testing.T) {
	d := New(testSchema())
	if _, err := d.InsertFact(NewFact("Teams", "GER", "EU")); err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	if c.ID() == d.ID() {
		t.Errorf("clone shares ID %d with original", c.ID())
	}
	if c.Generation() != 0 {
		t.Errorf("clone at generation %d, want 0", c.Generation())
	}
	// Editing the clone moves only the clone's counter.
	before := d.Generation()
	if _, err := c.InsertFact(NewFact("Teams", "ESP", "EU")); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != before {
		t.Errorf("editing clone moved original's generation %d -> %d", before, d.Generation())
	}
	if c.Generation() != 1 {
		t.Errorf("clone at generation %d after one edit, want 1", c.Generation())
	}

	// New databases get distinct IDs too.
	if New(testSchema()).ID() == New(testSchema()).ID() {
		t.Error("two fresh databases share an ID")
	}
}
