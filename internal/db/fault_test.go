package db

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

// openFaultDisk opens a fresh disk store routed through the given injector.
func openFaultDisk(t *testing.T, dir string, inj *faultfs.Injector) (*DiskStore, error) {
	t.Helper()
	return OpenDisk(dir, testSchema(), 1, WithFS(inj))
}

func TestDiskShortWriteSticky(t *testing.T) {
	// Dry run: count the ops a clean open performs so the fault can be
	// scheduled on the first post-open write.
	dry := faultfs.NewInjector(faultfs.OS())
	dds, err := openFaultDisk(t, t.TempDir(), dry)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	dds.Close()
	openOps := dry.OpCount()

	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS(),
		faultfs.Fault{At: openOps + 1, Op: faultfs.OpWrite, Kind: faultfs.KindShortWrite, Arg: 1})
	ds, err := openFaultDisk(t, dir, inj)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer ds.Close()
	// The first insert interns new symbols, which writes to symbols.dat
	// immediately — the short write must surface there or on Sync.
	var ierr error
	for i := 0; i < 50 && ierr == nil; i++ {
		_, ierr = ds.InsertFact(NewFact("Goals", fmt.Sprintf("p%d", i), "d"))
		if ierr == nil {
			ierr = ds.Sync()
		}
	}
	if ierr == nil {
		t.Fatal("short write never surfaced")
	}
	// Sticky: every further mutation and Sync fails with the same error.
	if _, err := ds.InsertFact(NewFact("Teams", "X", "Y")); err == nil {
		t.Error("insert succeeded on a poisoned store")
	}
	if err := ds.Sync(); err == nil {
		t.Error("Sync succeeded on a poisoned store")
	}
	if ds.Err() == nil {
		t.Error("Err() = nil on a poisoned store")
	}
}

func TestDiskCrashPreservesAcked(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDisk(dir, testSchema(), 2)
	if err != nil {
		t.Fatal(err)
	}
	acked := []Fact{NewFact("Teams", "GER", "EU"), NewFact("Goals", "Klose", "2014")}
	for _, f := range acked {
		if _, err := ds.InsertFact(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced tail: may or may not survive, must never corrupt.
	if _, err := ds.InsertFact(NewFact("Teams", "BRA", "SA")); err != nil {
		t.Fatal(err)
	}
	ds.Crash()
	re, err := OpenDisk(dir, testSchema(), 2)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	for _, f := range acked {
		if !re.Has(f) {
			t.Errorf("acked fact %v lost after crash", f)
		}
	}
	for _, f := range re.Facts() {
		if !f.Equal(acked[0]) && !f.Equal(acked[1]) && !f.Equal(NewFact("Teams", "BRA", "SA")) {
			t.Errorf("recovery invented fact %v", f)
		}
	}
}

func TestDiskMidFileCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDisk(dir, testSchema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := ds.InsertFact(NewFact("Teams", string(rune('a'+i)), "EU")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName("Teams", 0))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the middle of the file: a complete-but-invalid record.
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDisk(dir, testSchema(), 1)
	if err == nil {
		t.Fatal("open succeeded over mid-file corruption")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open error = %v, want ErrCorrupt", err)
	}
	var cerr *CorruptError
	if !errors.As(err, &cerr) {
		t.Fatalf("open error type = %T, want *CorruptError", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineFile)); err != nil {
		t.Errorf("QUARANTINE marker missing: %v", err)
	}
	if cerr.Quarantined == "" {
		t.Errorf("corrupt file was not moved aside: %+v", cerr)
	} else if _, err := os.Stat(cerr.Quarantined); err != nil {
		t.Errorf("quarantined copy missing: %v", err)
	}
	// Sticky: the second open fails too, even though the corrupt file moved.
	_, err = OpenDisk(dir, testSchema(), 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("second open = %v, want ErrCorrupt (sticky quarantine)", err)
	}
	// Operator clears the marker: the store opens again (without the
	// quarantined shard's facts — it refuses to invent them, not to serve).
	if err := os.Remove(filepath.Join(dir, quarantineFile)); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDisk(dir, testSchema(), 1)
	if err != nil {
		t.Fatalf("open after clearing marker: %v", err)
	}
	defer re.Close()
	if got := re.Stats().QuarantinedFiles; got != 1 {
		t.Errorf("QuarantinedFiles = %d, want 1", got)
	}
}

func TestDiskMetaChecksumFlip(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDisk(dir, testSchema(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, diskMetaFile)
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	// Re-route every tuple: change the shard count but keep valid JSON.
	tampered := []byte(`{"version":2,"shards":7,` + string(raw[len(`{"version":2,"shards":3,`):]))
	if err := os.WriteFile(metaPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDisk(dir, testSchema(), 3)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with tampered metadata = %v, want ErrCorrupt", err)
	}
}

func TestDiskV1Compat(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDisk(dir, testSchema(), 2, WithFormatVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	facts := []Fact{NewFact("Teams", "GER", "EU"), NewFact("Teams", "BRA", "SA"), NewFact("Goals", "Klose", "2014")}
	for _, f := range facts {
		if _, err := ds.InsertFact(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ds.DeleteFact(facts[1]); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen uses the recorded version, not the binary default.
	re, err := OpenDisk(dir, testSchema(), 2)
	if err != nil {
		t.Fatalf("reopen v1 store: %v", err)
	}
	if got := re.Stats().FormatVersion; got != 1 {
		t.Errorf("FormatVersion = %d, want 1", got)
	}
	if !re.Has(facts[0]) || !re.Has(facts[2]) || re.Has(facts[1]) {
		t.Errorf("v1 round-trip facts wrong: %v", re.Facts())
	}
	// v1 stores still compact (no commit markers, but the same live-only
	// rewrite applies).
	res, err := re.Compact(0)
	if err != nil {
		t.Fatalf("Compact v1: %v", err)
	}
	if res.ShardsCompacted == 0 || res.RecordsDropped == 0 {
		t.Errorf("Compact v1 result = %+v, want work done", res)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenDisk(dir, testSchema(), 2)
	if err != nil {
		t.Fatalf("reopen after v1 compaction: %v", err)
	}
	defer re2.Close()
	if !re2.Has(facts[0]) || !re2.Has(facts[2]) || re2.Has(facts[1]) {
		t.Errorf("v1 post-compaction facts wrong: %v", re2.Facts())
	}
}

func TestCompactBasic(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDisk(dir, testSchema(), 2)
	if err != nil {
		t.Fatal(err)
	}
	seeded := seedFacts(t, ds, 42, 200)
	// Dedupe (seedFacts may repeat), then delete half to accrete tombstones.
	var facts []Fact
	seen := map[string]bool{}
	for _, f := range seeded {
		if !seen[f.Key()] {
			seen[f.Key()] = true
			facts = append(facts, f)
		}
	}
	kept := map[string]bool{}
	for i, f := range facts {
		if i%2 == 0 {
			if _, err := ds.DeleteFact(f); err != nil {
				t.Fatal(err)
			}
		} else {
			kept[f.Rel+"\x00"+f.Args.Key()] = true
		}
	}
	if err := ds.Sync(); err != nil {
		t.Fatal(err)
	}
	before := ds.Stats()
	if before.GarbageRatio <= 0 {
		t.Fatalf("GarbageRatio = %v before compaction, want > 0", before.GarbageRatio)
	}
	res, err := ds.Compact(0)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.ShardsCompacted == 0 || res.RecordsDropped == 0 {
		t.Fatalf("Compact result = %+v, want work done", res)
	}
	if res.BytesAfter >= res.BytesBefore {
		t.Errorf("BytesAfter %d >= BytesBefore %d", res.BytesAfter, res.BytesBefore)
	}
	after := ds.Stats()
	if after.GarbageRatio != 0 {
		t.Errorf("GarbageRatio = %v after full compaction, want 0", after.GarbageRatio)
	}
	if after.CompactionRuns != 1 {
		t.Errorf("CompactionRuns = %d, want 1", after.CompactionRuns)
	}
	if after.CompactionReclaimedBytes <= 0 {
		t.Errorf("CompactionReclaimedBytes = %d, want > 0", after.CompactionReclaimedBytes)
	}
	// Compaction is invisible to readers: same facts, same generation.
	if after.Generation != before.Generation {
		t.Errorf("generation changed across compaction: %d -> %d", before.Generation, after.Generation)
	}
	// The store stays writable and reopens to the same facts.
	extra := NewFact("Teams", "post-compact", "EU")
	if _, err := ds.InsertFact(extra); err != nil {
		t.Fatalf("insert after compaction: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDisk(dir, testSchema(), 2)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer re.Close()
	got := re.Facts()
	if len(got) != len(kept)+1 {
		t.Fatalf("Len after reopen = %d, want %d", len(got), len(kept)+1)
	}
	for _, f := range got {
		if !kept[f.Rel+"\x00"+f.Args.Key()] && !f.Equal(extra) {
			t.Errorf("unexpected fact after compaction: %v", f)
		}
	}
}

func TestCompactThreshold(t *testing.T) {
	ds, _ := openTestDisk(t, 1)
	f := NewFact("Teams", "A", "B")
	if _, err := ds.InsertFact(f); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.DeleteFact(f); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ds.InsertFact(NewFact("Teams", string(rune('a'+i)), "EU")); err != nil {
			t.Fatal(err)
		}
	}
	// Garbage ratio is 2/12 ≈ 0.17 — below a 0.5 threshold, nothing runs.
	res, err := ds.Compact(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsCompacted != 0 {
		t.Errorf("Compact(0.5) rewrote %d shards, want 0", res.ShardsCompacted)
	}
	res, err = ds.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsCompacted != 1 || res.RecordsDropped != 2 {
		t.Errorf("Compact(0) = %+v, want 1 shard, 2 records", res)
	}
}

// TestCompactCrashSweep injects a crash at every file operation a compaction
// performs and proves each outcome reopens to exactly the live facts.
func TestCompactCrashSweep(t *testing.T) {
	build := func(t *testing.T, dir string) map[string]bool {
		t.Helper()
		ds, err := OpenDisk(dir, testSchema(), 1)
		if err != nil {
			t.Fatal(err)
		}
		live := map[string]bool{}
		for i := 0; i < 12; i++ {
			f := NewFact("Teams", string(rune('a'+i)), "EU")
			if _, err := ds.InsertFact(f); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if _, err := ds.DeleteFact(f); err != nil {
					t.Fatal(err)
				}
			} else {
				live[f.Args.Key()] = true
			}
		}
		if err := ds.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		return live
	}

	// Dry run: count the ops a clean open + compact + close performs.
	dryDir := t.TempDir()
	build(t, dryDir)
	counter := faultfs.NewInjector(faultfs.OS())
	ds, err := OpenDisk(dryDir, testSchema(), 1, WithFS(counter))
	if err != nil {
		t.Fatal(err)
	}
	openOps := counter.OpCount()
	if _, err := ds.Compact(0); err != nil {
		t.Fatal(err)
	}
	compactOps := counter.OpCount() - openOps
	ds.Close()
	if compactOps < 3 {
		t.Fatalf("compaction performed only %d counted ops", compactOps)
	}

	for p := int64(1); p <= compactOps; p++ {
		dir := t.TempDir()
		live := build(t, dir)
		inj := faultfs.NewInjector(faultfs.OS(),
			faultfs.Fault{At: openOps + p, Kind: faultfs.KindCrash})
		ds, err := OpenDisk(dir, testSchema(), 1, WithFS(inj))
		if err != nil {
			t.Fatalf("point %d: open: %v", p, err)
		}
		_, cerr := ds.Compact(0)
		if inj.Fired() == 0 {
			ds.Close()
			t.Fatalf("point %d: fault never fired", p)
		}
		_ = cerr // a crash-torn write reports success; later ops fail
		ds.Crash()
		re, err := OpenDisk(dir, testSchema(), 1)
		if err != nil {
			t.Fatalf("point %d: reopen after crash: %v", p, err)
		}
		got := map[string]bool{}
		for _, f := range re.Facts() {
			got[f.Args.Key()] = true
		}
		re.Close()
		if len(got) != len(live) {
			t.Fatalf("point %d: %d facts after crash, want %d", p, len(got), len(live))
		}
		for k := range live {
			if !got[k] {
				t.Fatalf("point %d: live fact %q lost", p, k)
			}
		}
	}
}

func TestStatsSegments(t *testing.T) {
	ds, _ := openTestDisk(t, 2)
	f := NewFact("Teams", "A", "B")
	if _, err := ds.InsertFact(f); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.DeleteFact(f); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.InsertFact(NewFact("Goals", "p", "d")); err != nil {
		t.Fatal(err)
	}
	st := ds.Stats()
	if st.FormatVersion != formatVersion {
		t.Errorf("FormatVersion = %d, want %d", st.FormatVersion, formatVersion)
	}
	if len(st.Segments) != 4 { // 2 relations x 2 shards
		t.Fatalf("len(Segments) = %d, want 4", len(st.Segments))
	}
	var dead, live int
	for _, seg := range st.Segments {
		if seg.Relation != "Teams" && seg.Relation != "Goals" {
			t.Errorf("unexpected segment relation %q", seg.Relation)
		}
		dead += seg.Dead
		live += seg.Live
	}
	if dead != 2 || live != 1 {
		t.Errorf("dead, live = %d, %d; want 2, 1", dead, live)
	}
	if st.GarbageRatio <= 0 {
		t.Errorf("GarbageRatio = %v, want > 0", st.GarbageRatio)
	}
}

// TestDiskFaultSweepSmoke runs a compact version of the harness pattern
// (internal/check.CheckDiskFaults is the full-width property): inject a
// crash at every op index of a scripted run and prove acked facts survive.
func TestDiskFaultSweepSmoke(t *testing.T) {
	script := func(ds *DiskStore) (acked []Fact, err error) {
		all := []Fact{
			NewFact("Teams", "GER", "EU"), NewFact("Teams", "BRA", "SA"),
			NewFact("Goals", "Klose", "2014"), NewFact("Goals", "Pele", "1970"),
		}
		for i, f := range all {
			if _, err := ds.InsertFact(f); err != nil {
				return acked, err
			}
			if i%2 == 1 {
				if err := ds.Sync(); err != nil {
					return acked, err
				}
				acked = all[:i+1]
			}
		}
		return acked, nil
	}
	// Count ops in a clean run.
	dry := faultfs.NewInjector(faultfs.OS())
	dir := t.TempDir()
	ds, err := OpenDisk(dir, testSchema(), 1, WithFS(dry))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := script(ds); err != nil {
		t.Fatal(err)
	}
	ds.Crash()
	total := dry.OpCount()
	for p := int64(1); p <= total; p++ {
		dir := t.TempDir()
		inj := faultfs.NewInjector(faultfs.OS(), faultfs.Fault{At: p, Kind: faultfs.KindCrash})
		ds, err := OpenDisk(dir, testSchema(), 1, WithFS(inj))
		if err != nil {
			continue // crash during open: nothing acked, nothing to check
		}
		acked, _ := script(ds)
		ds.Crash()
		re, err := OpenDisk(dir, testSchema(), 1)
		if err != nil {
			t.Fatalf("point %d: reopen: %v", p, err)
		}
		for _, f := range acked {
			if !re.Has(f) {
				t.Errorf("point %d: acked fact %v lost", p, f)
			}
		}
		re.Close()
	}
}
