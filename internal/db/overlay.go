package db

import "repro/internal/schema"

// Overlay returns a read-only view of base with one edit virtually applied:
// after Overlay(base, Insertion(f)) the fact reads as present, after
// Overlay(base, Deletion(f)) as absent, while base itself is never touched.
// The view engine uses it to reconstruct the pre-edit state of a delta —
// mutating the store instead would bump the edit generation and, on
// journaled backends, append real insert/delete records, so a crash (or a
// journal-replay failover) landing between a toggle and its revert could
// recover a state that never semantically existed.
//
// When the virtual edit is a no-op (inserting a fact base already has,
// deleting one it lacks) base is returned unchanged: its state already is
// the overlaid state, and its real identity keeps caching sound. Otherwise
// the overlay reports a fresh store identity at generation zero, so
// generation-stamped caches never alias it with base.
//
// The overlay reads through to base and follows the usual reader contract:
// it must not be used concurrently with mutations of base.
func Overlay(base Reader, e Edit) Reader {
	add := e.Op == Insert
	if add == base.Has(e.Fact) {
		return base
	}
	return &overlayReader{base: base, f: e.Fact, add: add, id: lastDBID.Add(1)}
}

// overlayReader adjusts every read of base by one fact. Invariant (checked
// by Overlay): add implies base lacks f, !add implies base has it.
type overlayReader struct {
	base Reader
	f    Fact
	add  bool // true: f virtually present; false: f virtually absent
	id   uint64
}

func (o *overlayReader) ID() uint64             { return o.id }
func (o *overlayReader) Generation() uint64     { return 0 }
func (o *overlayReader) Schema() *schema.Schema { return o.base.Schema() }

func (o *overlayReader) Rel(name string) Rel {
	r := o.base.Rel(name)
	if r == nil || name != o.f.Rel {
		return r
	}
	return &overlayRel{base: r, t: o.f.Args, add: o.add}
}

func (o *overlayReader) Has(f Fact) bool {
	if f.Equal(o.f) {
		return o.add
	}
	return o.base.Has(f)
}

func (o *overlayReader) Len() int {
	if o.add {
		return o.base.Len() + 1
	}
	return o.base.Len() - 1
}

func (o *overlayReader) Facts() []Fact {
	facts := o.base.Facts()
	out := make([]Fact, 0, len(facts)+1)
	if o.add {
		placed := false
		for _, g := range facts {
			if !placed && o.f.Less(g) {
				out = append(out, o.f)
				placed = true
			}
			out = append(out, g)
		}
		if !placed {
			out = append(out, o.f)
		}
		return out
	}
	for _, g := range facts {
		if g.Equal(o.f) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// overlayRel adjusts the edited relation's read view by one tuple. Same
// invariant as overlayReader: add implies base lacks t, !add implies base
// has it.
type overlayRel struct {
	base Rel
	t    Tuple
	add  bool
}

func (r *overlayRel) Name() string { return r.base.Name() }
func (r *overlayRel) Arity() int   { return r.base.Arity() }

func (r *overlayRel) Len() int {
	if r.add {
		return r.base.Len() + 1
	}
	return r.base.Len() - 1
}

func (r *overlayRel) Has(t Tuple) bool {
	if t.Equal(r.t) {
		return r.add
	}
	return r.base.Has(t)
}

func (r *overlayRel) Tuples() []Tuple {
	ts := r.base.Tuples()
	out := make([]Tuple, 0, len(ts)+1)
	if r.add {
		placed := false
		for _, u := range ts {
			if !placed && r.t.Less(u) {
				out = append(out, r.t)
				placed = true
			}
			out = append(out, u)
		}
		if !placed {
			out = append(out, r.t)
		}
		return out
	}
	for _, u := range ts {
		if u.Equal(r.t) {
			continue
		}
		out = append(out, u)
	}
	return out
}

func (r *overlayRel) Each(fn func(Tuple) bool) {
	if r.add && !fn(r.t) {
		return
	}
	r.base.Each(func(u Tuple) bool {
		if !r.add && u.Equal(r.t) {
			return true
		}
		return fn(u)
	})
}

func (r *overlayRel) Scan(bindings []Binding) []Tuple {
	ts := r.base.Scan(bindings)
	if !tupleMatches(r.t, bindings) {
		return ts
	}
	if r.add {
		return append(ts, r.t)
	}
	for i, u := range ts {
		if u.Equal(r.t) {
			out := make([]Tuple, 0, len(ts)-1)
			out = append(out, ts[:i]...)
			return append(out, ts[i+1:]...)
		}
	}
	return ts
}

func (r *overlayRel) MatchCount(bindings []Binding) int {
	n := r.base.MatchCount(bindings)
	if tupleMatches(r.t, bindings) {
		if r.add {
			n++
		} else {
			n--
		}
	}
	return n
}

// tupleMatches reports whether the tuple satisfies every binding.
func tupleMatches(t Tuple, bindings []Binding) bool {
	for _, b := range bindings {
		if b.Col < 0 || b.Col >= len(t) || t[b.Col] != b.Value {
			return false
		}
	}
	return true
}

var (
	_ Reader = (*overlayReader)(nil)
	_ Rel    = (*overlayRel)(nil)
)
