package db

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Segment compaction: deletes (and re-inserts) accrete records in the
// append-only segments forever; compaction rewrites a shard as just its
// live tuples — insert records only, no tombstones — reclaiming the dead
// bytes. The rewrite is crash-safe at every step:
//
//  1. the symbol table is fsynced first, so the new segment can never
//     reference a symbol a crash could take away;
//  2. live records are written to a temp file in the store directory,
//     fsynced, and closed;
//  3. the temp file is atomically renamed over the segment and the
//     directory fsynced (faultfs.RenameAndSyncDir).
//
// A crash before the rename leaves the old segment untouched (the stale
// temp file is removed at the next open); a crash after it leaves the new,
// fully-synced segment. Both states replay to exactly the live tuples. A
// failure after the rename has taken effect poisons the store (sticky
// Err): the on-disk layout changed under an open handle, so no further
// append can be trusted to land in the right file.

// CompactionResult summarizes one Compact call.
type CompactionResult struct {
	// ShardsCompacted is how many segment files were rewritten.
	ShardsCompacted int `json:"shards_compacted"`
	// RecordsDropped is the dead records the rewrites discarded.
	RecordsDropped int `json:"records_dropped"`
	// BytesBefore/BytesAfter are the rewritten segments' sizes before and
	// after (segments left alone count in neither).
	BytesBefore int64 `json:"bytes_before"`
	BytesAfter  int64 `json:"bytes_after"`
}

// Compact rewrites every shard whose garbage ratio (dead records over
// total records) is at least minGarbage, dropping its dead records. A
// minGarbage of 0 compacts every shard holding any dead record at all.
// Like every mutation, Compact must be serialized by the caller against
// other writes on the same store; concurrent readers are safe throughout
// (shard states are not touched, only files). Facts and generation are
// unchanged — compaction is invisible to readers and caches.
func (s *DiskStore) Compact(minGarbage float64) (CompactionResult, error) {
	var res CompactionResult
	if s.detached {
		return res, errors.New("db: compacting a detached store")
	}
	if s.closed {
		return res, errors.New("db: compacting a closed store")
	}
	if s.err != nil {
		return res, s.err
	}
	// Symbols first: the rewritten segments are durable the moment they are
	// installed, so every symbol they reference must already be durable.
	if err := s.syms.sync(); err != nil {
		s.err = err
		rec().Inc(MetricCompactionErrors)
		return res, err
	}
	for _, name := range s.relNames {
		r := s.rels[name]
		for i, sh := range r.shards {
			live := len(sh.state.tuples)
			dead := sh.records - live
			if dead <= 0 {
				continue
			}
			if float64(dead)/float64(sh.records) < minGarbage {
				continue
			}
			if err := s.compactShard(r, i, &res); err != nil {
				rec().Inc(MetricCompactionErrors)
				return res, err
			}
		}
	}
	if res.ShardsCompacted > 0 {
		s.compactRuns++
		s.compactShards += int64(res.ShardsCompacted)
		reclaimed := res.BytesBefore - res.BytesAfter
		if reclaimed > 0 {
			s.compactReclaimed += reclaimed
		}
		rec().Inc(MetricCompactionRuns)
		rec().Add(MetricCompactionShards, int64(res.ShardsCompacted))
		rec().Add(MetricCompactionReclaimed, reclaimed)
	}
	return res, nil
}

// compactShard rewrites one shard's segment to live records only.
func (s *DiskStore) compactShard(r *diskRel, i int, res *CompactionResult) error {
	sh := r.shards[i]
	name := segName(r.name, i)
	path := filepath.Join(s.dir, name)

	oldBytes := int64(sh.w.Buffered())
	if fi, err := sh.file.Stat(); err == nil {
		oldBytes += fi.Size()
	}

	// Deterministic rewrite: live tuples in packed-key order (= interned ID
	// order), then a commit marker so the file ends with a valid record.
	keys := make([]string, 0, len(sh.state.tuples))
	for k := range sh.state.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		buf = appendSegRecord(buf, s.version, opInsert, sh.state.tuples[k])
	}
	if s.version >= 2 {
		buf = appendSegRecord(buf, s.version, opCommit, nil)
	}

	tmp, err := s.fs.CreateTemp(s.dir, name+".compact-*")
	if err != nil {
		return fmt.Errorf("db: creating compaction temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	discard := func(err error) error {
		tmp.Close()
		_ = s.fs.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		return discard(fmt.Errorf("db: writing compacted segment %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return discard(fmt.Errorf("db: syncing compacted segment %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		_ = s.fs.Remove(tmpName)
		return fmt.Errorf("db: closing compacted segment %s: %w", path, err)
	}
	if err := s.fs.Rename(tmpName, path); err != nil {
		// The rename did not take effect: the old segment is untouched and
		// the store remains fully usable.
		_ = s.fs.Remove(tmpName)
		return fmt.Errorf("db: installing compacted segment %s: %w", path, err)
	}
	// Point of no return: the directory entry now names the new file. Any
	// failure from here poisons the store — the open handle points at the
	// unlinked old inode, so further appends would be silently lost.
	sh.file.Close()
	sh.file, sh.w = nil, nil
	if err := s.fs.SyncDir(s.dir); err != nil {
		s.err = fmt.Errorf("db: syncing store dir after compacting %s: %w", path, err)
		return s.err
	}
	nf, err := s.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		s.err = fmt.Errorf("db: reopening compacted segment %s: %w", path, err)
		return s.err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		s.err = fmt.Errorf("db: seeking compacted segment %s: %w", path, err)
		return s.err
	}
	sh.file = nf
	sh.w = bufio.NewWriter(nf)
	res.ShardsCompacted++
	res.RecordsDropped += sh.records - len(sh.state.tuples)
	res.BytesBefore += oldBytes
	res.BytesAfter += int64(len(buf))
	sh.records = len(sh.state.tuples)
	sh.dirty = false
	return nil
}
