package db

import (
	"fmt"
	"os"
	"testing"
)

// appendBytes appends raw bytes to a file, for torn-tail corruption tests.
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// benchDB builds an in-memory database with n facts for benchmarks.
func benchDB(n int) *Database {
	d := New(testSchema())
	for i := 0; i < n; i++ {
		d.InsertFact(NewFact("Teams", fmt.Sprintf("t%d", i), fmt.Sprintf("c%d", i%7)))
		d.InsertFact(NewFact("Goals", fmt.Sprintf("p%d", i%97), fmt.Sprintf("d%d", i)))
	}
	return d
}

// BenchmarkCloneVsSnapshot guards the copy-on-write win: the historical
// per-job deep clone was O(|D|); Clone and Snapshot are now O(relations).
func BenchmarkCloneVsSnapshot(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		d := benchDB(n)
		b.Run(fmt.Sprintf("deepClone/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = d.deepClone()
			}
		})
		b.Run(fmt.Sprintf("clone/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = d.Clone()
			}
		})
		b.Run(fmt.Sprintf("snapshot/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = d.Snapshot()
			}
		})
	}
}

// BenchmarkDiskInsert measures the disk store's append path.
func BenchmarkDiskInsert(b *testing.B) {
	dir := b.TempDir()
	ds, err := OpenDisk(dir, testSchema(), DefaultShards)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.InsertFact(NewFact("Teams", fmt.Sprintf("t%d", i), fmt.Sprintf("c%d", i%7)))
	}
}
