package db

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/schema"
)

// lastDBID hands out process-unique database identities (see Database.ID).
var lastDBID atomic.Uint64

// Database is an instance of a schema: one Relation per relation symbol.
// It is the paper's D (or the ground truth DG). Databases are not safe for
// concurrent mutation; the cleaner serializes edits.
type Database struct {
	schema *schema.Schema
	rels   map[string]*Relation
	id     uint64 // process-unique identity, for evaluation caches
	gen    uint64 // edit generation, bumped by every mutating change
}

// New creates an empty database instance of the given schema.
func New(s *schema.Schema) *Database {
	d := &Database{schema: s, rels: make(map[string]*Relation, s.Len()), id: lastDBID.Add(1)}
	for _, name := range s.Names() {
		rel, _ := s.Relation(name)
		d.rels[name] = NewRelation(name, rel.Arity())
	}
	return d
}

// ID returns the database's process-unique identity. Clones get fresh
// identities; the evaluation cache keys entries by (ID, Generation) so two
// instances never share cache lines.
func (d *Database) ID() uint64 { return d.id }

// Generation returns the edit-generation counter: it increases monotonically
// with every mutating InsertFact/DeleteFact/Apply (no-op edits don't bump
// it). Evaluation results computed at one generation remain valid exactly
// until the counter moves, which is what makes generation-stamped caching of
// Q(D) sound. Reading it concurrently with a mutation follows the same rule
// as the rest of the Database: mutations must be serialized by the caller.
func (d *Database) Generation() uint64 { return d.gen }

// Schema returns the database schema.
func (d *Database) Schema() *schema.Schema { return d.schema }

// Relation returns the named relation instance, or nil if the schema has no
// such relation.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// Rel returns the named relation's read view — the Store interface's
// backend-neutral accessor. It returns an untyped nil for unknown relations
// so `Rel(x) == nil` behaves as callers expect.
func (d *Database) Rel(name string) Rel {
	if r := d.rels[name]; r != nil {
		return r
	}
	return nil
}

// Has reports whether the fact is present in the database.
func (d *Database) Has(f Fact) bool {
	r := d.rels[f.Rel]
	return r != nil && r.Has(f.Args)
}

// InsertFact adds the fact, returning true if it was newly inserted.
// It returns an error for unknown relations or arity mismatches.
func (d *Database) InsertFact(f Fact) (bool, error) {
	r := d.rels[f.Rel]
	if r == nil {
		return false, fmt.Errorf("db: unknown relation %q", f.Rel)
	}
	if len(f.Args) != r.Arity() {
		return false, fmt.Errorf("db: arity mismatch for %s: got %d, want %d", f.Rel, len(f.Args), r.Arity())
	}
	inserted := r.Insert(f.Args)
	if inserted {
		d.gen++
	}
	return inserted, nil
}

// DeleteFact removes the fact, returning true if it was present.
func (d *Database) DeleteFact(f Fact) (bool, error) {
	r := d.rels[f.Rel]
	if r == nil {
		return false, fmt.Errorf("db: unknown relation %q", f.Rel)
	}
	deleted := r.Delete(f.Args)
	if deleted {
		d.gen++
	}
	return deleted, nil
}

// Apply applies a single edit (the paper's D ⊕ e). Edits are idempotent:
// inserting a present fact or deleting an absent one changes nothing and
// reports changed = false.
func (d *Database) Apply(e Edit) (changed bool, err error) {
	if e.Op == Insert {
		return d.InsertFact(e.Fact)
	}
	return d.DeleteFact(e.Fact)
}

// ApplyAll applies the edits in order, returning the number that changed the
// database. It stops at the first error.
func (d *Database) ApplyAll(edits []Edit) (changed int, err error) {
	for _, e := range edits {
		ch, err := d.Apply(e)
		if err != nil {
			return changed, err
		}
		if ch {
			changed++
		}
	}
	return changed, nil
}

// Len returns the total number of facts across all relations.
func (d *Database) Len() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// Facts returns every fact in the database in deterministic order
// (relations sorted by name, tuples lexicographically).
func (d *Database) Facts() []Fact {
	names := make([]string, 0, len(d.rels))
	for n := range d.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Fact, 0, d.Len())
	for _, n := range names {
		for _, t := range d.rels[n].Tuples() {
			out = append(out, Fact{Rel: n, Args: t})
		}
	}
	return out
}

// Clone returns an independent copy sharing the (immutable) schema. The
// copy has a fresh identity and starts at generation zero. Cloning is
// copy-on-write: it costs O(relations), not O(|D|) — each relation's maps
// are shared until either side mutates them (see Relation.Clone). For the
// concurrency contract, Clone counts as a mutation of d.
func (d *Database) Clone() *Database {
	out := &Database{schema: d.schema, rels: make(map[string]*Relation, len(d.rels)), id: lastDBID.Add(1)}
	for n, r := range d.rels {
		out.rels[n] = r.Clone()
	}
	return out
}

// deepClone is the historical O(|D|) physical copy, kept for the
// clone-vs-snapshot benchmark baseline.
func (d *Database) deepClone() *Database {
	out := &Database{schema: d.schema, rels: make(map[string]*Relation, len(d.rels)), id: lastDBID.Add(1)}
	for n, r := range d.rels {
		nr := NewRelation(r.name, r.arity)
		r.Each(func(t Tuple) bool {
			nr.Insert(t)
			return true
		})
		out.rels[n] = nr
	}
	return out
}

// Fork returns a mutable copy-on-write copy — Clone behind the Store
// interface.
func (d *Database) Fork() Store { return d.Clone() }

// Snapshot captures an immutable read view of the database at its current
// generation. The snapshot keeps reporting d's identity and the captured
// generation, so evaluation-cache entries warmed through it serve the live
// database at the same generation (and vice versa). Like Clone, taking a
// snapshot counts as a mutation of d for the concurrency contract; the
// returned snapshot may then be read concurrently with further edits to d.
func (d *Database) Snapshot() Snapshot {
	return &memSnapshot{d: d.Clone(), id: d.id, gen: d.gen}
}

// Stats describes the store for observability.
func (d *Database) Stats() Stats {
	st := Stats{
		Backend:    "mem",
		Generation: d.gen,
		Relations:  make(map[string]int, len(d.rels)),
		Shards:     1,
	}
	for n, r := range d.rels {
		st.Relations[n] = r.Len()
		st.TotalFacts += r.Len()
	}
	return st
}

// Sync is a no-op: the in-memory store has no durability.
func (d *Database) Sync() error { return nil }

// Close is a no-op for the in-memory store.
func (d *Database) Close() error { return nil }

// Distance returns the size of the symmetric difference |D − D′| + |D′ − D|.
// The paper writes |D − D′| for this quantity and uses it to show each
// oracle-derived edit moves D closer to DG (Prop 3.3).
func (d *Database) Distance(o *Database) int {
	n := 0
	for name, r := range d.rels {
		or := o.rels[name]
		r.Each(func(t Tuple) bool {
			if or == nil || !or.Has(t) {
				n++
			}
			return true
		})
	}
	for name, or := range o.rels {
		r := d.rels[name]
		or.Each(func(t Tuple) bool {
			if r == nil || !r.Has(t) {
				n++
			}
			return true
		})
	}
	return n
}

// Equal reports whether both databases contain exactly the same facts.
func (d *Database) Equal(o *Database) bool { return d.Distance(o) == 0 }

// Diff returns the edits that transform d into o: deletions of facts in
// d − o followed by insertions of facts in o − d, in deterministic order.
func (d *Database) Diff(o *Database) []Edit {
	var edits []Edit
	for _, f := range d.Facts() {
		if !o.Has(f) {
			edits = append(edits, Deletion(f))
		}
	}
	for _, f := range o.Facts() {
		if !d.Has(f) {
			edits = append(edits, Insertion(f))
		}
	}
	return edits
}
