package db

import (
	"testing"
)

// overlayBase builds a small database for overlay tests.
func overlayBase(t *testing.T) *Database {
	t.Helper()
	d := New(testSchema())
	for _, f := range []Fact{
		NewFact("Teams", "ESP", "EU"),
		NewFact("Teams", "GER", "EU"),
		NewFact("Goals", "Iniesta", "11.07.10"),
	} {
		if _, err := d.InsertFact(f); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestOverlayInsert(t *testing.T) {
	d := overlayBase(t)
	f := NewFact("Teams", "ITA", "EU")
	gen, baseLen := d.Generation(), d.Len()
	o := Overlay(d, Insertion(f))

	if o == Reader(d) {
		t.Fatalf("insert of an absent fact must not collapse to base")
	}
	if !o.Has(f) {
		t.Errorf("overlay lacks the inserted fact")
	}
	if o.Has(NewFact("Teams", "BRA", "SA")) {
		t.Errorf("overlay invents unrelated facts")
	}
	if !o.Has(NewFact("Teams", "ESP", "EU")) {
		t.Errorf("overlay dropped a base fact")
	}
	if got := o.Len(); got != baseLen+1 {
		t.Errorf("Len = %d, want %d", got, baseLen+1)
	}
	if o.ID() == d.ID() {
		t.Errorf("overlay shares the base store identity; caches could alias them")
	}

	r := o.Rel("Teams")
	if r.Len() != 3 {
		t.Errorf("Teams Len = %d, want 3", r.Len())
	}
	if !r.Has(Tuple{"ITA", "EU"}) || r.Has(Tuple{"BRA", "SA"}) {
		t.Errorf("Rel.Has wrong on overlay tuples")
	}
	ts := r.Tuples()
	if len(ts) != 3 || !ts[1].Equal(Tuple{"GER", "EU"}) {
		t.Errorf("Tuples = %v, want sorted [ESP GER ITA]", ts)
	}
	n := 0
	r.Each(func(Tuple) bool { n++; return true })
	if n != 3 {
		t.Errorf("Each visited %d tuples, want 3", n)
	}
	if got := r.MatchCount([]Binding{{Col: 1, Value: "EU"}}); got != 3 {
		t.Errorf("MatchCount(continent=EU) = %d, want 3", got)
	}
	if got := len(r.Scan([]Binding{{Col: 0, Value: "ITA"}})); got != 1 {
		t.Errorf("Scan(name=ITA) returned %d tuples, want 1", got)
	}
	if got := len(r.Scan([]Binding{{Col: 1, Value: "SA"}})); got != 0 {
		t.Errorf("Scan(continent=SA) returned %d tuples, want 0", got)
	}
	if got := len(o.Facts()); got != baseLen+1 {
		t.Errorf("Facts returned %d facts, want %d", got, baseLen+1)
	}

	// Goals is not the edited relation: reads pass straight through.
	if o.Rel("Goals").Len() != 1 {
		t.Errorf("untouched relation changed size")
	}
	// The base store itself must be untouched.
	if d.Generation() != gen || d.Len() != baseLen || d.Has(f) {
		t.Errorf("overlay mutated the base store")
	}
}

func TestOverlayDelete(t *testing.T) {
	d := overlayBase(t)
	f := NewFact("Teams", "ESP", "EU")
	gen, baseLen := d.Generation(), d.Len()
	o := Overlay(d, Deletion(f))

	if o.Has(f) {
		t.Errorf("overlay still has the deleted fact")
	}
	if !o.Has(NewFact("Teams", "GER", "EU")) {
		t.Errorf("overlay dropped an unrelated fact")
	}
	if got := o.Len(); got != baseLen-1 {
		t.Errorf("Len = %d, want %d", got, baseLen-1)
	}

	r := o.Rel("Teams")
	if r.Len() != 1 || r.Has(Tuple{"ESP", "EU"}) {
		t.Errorf("Rel still shows the deleted tuple")
	}
	if ts := r.Tuples(); len(ts) != 1 || !ts[0].Equal(Tuple{"GER", "EU"}) {
		t.Errorf("Tuples = %v, want [GER]", ts)
	}
	n := 0
	r.Each(func(Tuple) bool { n++; return true })
	if n != 1 {
		t.Errorf("Each visited %d tuples, want 1", n)
	}
	if got := r.MatchCount([]Binding{{Col: 1, Value: "EU"}}); got != 1 {
		t.Errorf("MatchCount(continent=EU) = %d, want 1", got)
	}
	if got := len(r.Scan([]Binding{{Col: 1, Value: "EU"}})); got != 1 {
		t.Errorf("Scan(continent=EU) returned %d tuples, want 1", got)
	}
	if got := len(o.Facts()); got != baseLen-1 {
		t.Errorf("Facts returned %d facts, want %d", got, baseLen-1)
	}
	if d.Generation() != gen || !d.Has(f) {
		t.Errorf("overlay mutated the base store")
	}
}

// TestOverlayNoop: a virtual edit the base already reflects returns base
// itself, keeping its real identity for sound caching.
func TestOverlayNoop(t *testing.T) {
	d := overlayBase(t)
	if o := Overlay(d, Insertion(NewFact("Teams", "ESP", "EU"))); o != Reader(d) {
		t.Errorf("no-op insert overlay is not base")
	}
	if o := Overlay(d, Deletion(NewFact("Teams", "ITA", "EU"))); o != Reader(d) {
		t.Errorf("no-op delete overlay is not base")
	}
}

// TestOverlayEachStops: Each must honor an early stop from the callback in
// both modes.
func TestOverlayEachStops(t *testing.T) {
	d := overlayBase(t)
	for _, e := range []Edit{
		Insertion(NewFact("Teams", "ITA", "EU")),
		Deletion(NewFact("Teams", "ESP", "EU")),
	} {
		n := 0
		Overlay(d, e).Rel("Teams").Each(func(Tuple) bool { n++; return false })
		if n != 1 {
			t.Errorf("edit %v: Each visited %d tuples after stop, want 1", e, n)
		}
	}
}
