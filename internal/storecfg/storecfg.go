// Package storecfg wires the pluggable db.Store backends into command-line
// binaries: every cmd/ binary exposes the same -store/-store-dir/
// -store-shards flags (defaulting from the QOCO_STORE environment variable,
// which the CI disk matrix leg also sets) and resolves them here.
package storecfg

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/db"
)

// Config is the resolved storage configuration of one binary.
type Config struct {
	// Backend is "mem" (the in-memory store) or "disk" (the sharded
	// disk-backed store).
	Backend string
	// Dir is the disk store's directory; empty means a fresh temp dir.
	Dir string
	// Shards is the per-relation hash fan-out for newly created disk stores.
	Shards int
}

// Register installs the storage flags on fs (flag.CommandLine for binaries).
// The -store default honors QOCO_STORE so the CI disk leg exercises every
// binary without editing invocations.
func Register(fs *flag.FlagSet) *Config {
	c := &Config{}
	def := os.Getenv("QOCO_STORE")
	if def == "" {
		def = "mem"
	}
	fs.StringVar(&c.Backend, "store", def,
		"fact-store backend: mem (in-memory) or disk (sharded, disk-backed; defaults from $QOCO_STORE)")
	fs.StringVar(&c.Dir, "store-dir", "",
		"directory of the disk-backed store (empty = fresh temp dir); reopening a dir resumes its contents")
	fs.IntVar(&c.Shards, "store-shards", db.DefaultShards,
		"per-relation hash-shard fan-out when creating a disk-backed store")
	return c
}

// Materialize resolves the configuration against a seed database: with the
// mem backend the seed itself is the store; with the disk backend the store
// directory is opened (created under os.TempDir if unset) and, when the
// store is empty, seeded with the seed's facts and synced. Reopening a
// non-empty store directory keeps its contents — the seed is ignored, which
// is what lets a cleaned database survive process restarts.
func (c *Config) Materialize(seed *db.Database) (db.Store, error) {
	switch c.Backend {
	case "", "mem":
		return seed, nil
	case "disk":
		dir := c.Dir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "qoco-store-*"); err != nil {
				return nil, fmt.Errorf("storecfg: creating store dir: %w", err)
			}
		}
		ds, err := db.OpenDisk(dir, seed.Schema(), c.Shards)
		if err != nil {
			if errors.Is(err, db.ErrCorrupt) {
				return nil, fmt.Errorf("%w\n(the damaged file was quarantined; see docs/OPERATIONS.md, \"Storage corruption and quarantine\")", err)
			}
			return nil, err
		}
		if ds.Len() == 0 && seed.Len() > 0 {
			if _, err := db.Copy(ds, seed); err != nil {
				ds.Close()
				return nil, err
			}
			if err := ds.Sync(); err != nil {
				ds.Close()
				return nil, err
			}
		}
		return ds, nil
	default:
		return nil, fmt.Errorf("storecfg: unknown backend %q (want mem or disk)", c.Backend)
	}
}
