package storecfg

import (
	"flag"
	"testing"

	"repro/internal/db"
	"repro/internal/schema"
)

func testSeed(t *testing.T) *db.Database {
	t.Helper()
	s := schema.New(schema.Relation{Name: "Teams", Attrs: []string{"team", "confed"}})
	d := db.New(s)
	d.InsertFact(db.NewFact("Teams", "ESP", "EU"))
	d.InsertFact(db.NewFact("Teams", "BRA", "SA"))
	return d
}

func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Backend != "mem" && c.Backend != "disk" {
		t.Fatalf("default backend = %q", c.Backend)
	}
	if c.Shards != db.DefaultShards {
		t.Errorf("default shards = %d, want %d", c.Shards, db.DefaultShards)
	}
}

func TestRegisterHonorsEnv(t *testing.T) {
	t.Setenv("QOCO_STORE", "disk")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Backend != "disk" {
		t.Errorf("backend = %q with QOCO_STORE=disk, want disk", c.Backend)
	}
	// An explicit flag still overrides the environment default.
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	c2 := Register(fs2)
	if err := fs2.Parse([]string{"-store", "mem"}); err != nil {
		t.Fatal(err)
	}
	if c2.Backend != "mem" {
		t.Errorf("backend = %q with -store mem, want mem", c2.Backend)
	}
}

func TestMaterializeMem(t *testing.T) {
	seed := testSeed(t)
	st, err := (&Config{Backend: "mem"}).Materialize(seed)
	if err != nil {
		t.Fatal(err)
	}
	if st != db.Store(seed) {
		t.Error("mem backend did not return the seed database itself")
	}
}

func TestMaterializeDiskSeedsAndResumes(t *testing.T) {
	seed := testSeed(t)
	dir := t.TempDir()
	cfg := &Config{Backend: "disk", Dir: dir, Shards: 2}

	st, err := cfg.Materialize(seed)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(st, seed) {
		t.Fatalf("disk store not seeded: distance %d", db.Distance(st, seed))
	}
	edit := db.NewFact("Teams", "GER", "EU")
	if _, err := st.InsertFact(edit); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening a non-empty dir resumes its contents; the seed is ignored.
	st2, err := cfg.Materialize(testSeed(t))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.Has(edit) {
		t.Error("reopened store lost the edit applied before Close")
	}
	if st2.Len() != 3 {
		t.Errorf("reopened store has %d facts, want 3", st2.Len())
	}
	if st2.Stats().Backend != "disk" {
		t.Errorf("backend = %q, want disk", st2.Stats().Backend)
	}
}

func TestMaterializeUnknownBackend(t *testing.T) {
	if _, err := (&Config{Backend: "tape"}).Materialize(testSeed(t)); err == nil {
		t.Error("unknown backend did not error")
	}
}
