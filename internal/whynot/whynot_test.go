package whynot

import (
	"reflect"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/schema"
)

func chainSchema() *schema.Schema {
	return schema.New(
		schema.Relation{Name: "R1", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "R2", Attrs: []string{"b", "c"}},
		schema.Relation{Name: "R3", Attrs: []string{"c", "d"}},
		schema.Relation{Name: "R4", Attrs: []string{"c", "e"}},
	)
}

func TestConnectedOrderChain(t *testing.T) {
	q := cq.MustParse("(x, y, z, w) :- R1(x, y), R3(z, w), R2(y, z)")
	// R3 does not connect to R1 directly; R2 does, then R3 connects via z.
	got := ConnectedOrder(q)
	want := []int{0, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ConnectedOrder = %v, want %v", got, want)
	}
}

func TestConnectedOrderDisconnected(t *testing.T) {
	q := cq.MustParse("(x, z) :- R1(x, y), R3(z, w)")
	got := ConnectedOrder(q)
	if len(got) != 2 {
		t.Fatalf("order = %v", got)
	}
}

// TestExplainFigure2 mirrors Figure 2 (right): a 4-atom chain where both the
// first two atoms and the last two have assignments, but their join is empty.
func TestExplainFigure2(t *testing.T) {
	d := db.New(chainSchema())
	// R1 ⋈ R2 non-empty via b=b1; R3 ⋈ R4 non-empty via c=c2; but R2's c
	// values (c1) never meet R3/R4's (c2), so the top join is picky.
	d.InsertFact(db.NewFact("R1", "a1", "b1"))
	d.InsertFact(db.NewFact("R2", "b1", "c1"))
	d.InsertFact(db.NewFact("R3", "c2", "d1"))
	d.InsertFact(db.NewFact("R4", "c2", "e1"))
	q := cq.MustParse("(x, y, z, w) :- R1(x, y), R2(y, z), R3(z, w), R4(z, v), z != x, w != x")

	ex, ok := Explain(q, d)
	if !ok {
		t.Fatalf("Explain: no picky join found")
	}
	if ex.PickyPos != 2 {
		t.Fatalf("PickyPos = %d, want 2 (R1⋈R2 vs R3,R4)", ex.PickyPos)
	}
	left := cq.SubqueryOf(q, ex.Left())
	right := cq.SubqueryOf(q, ex.Right())
	if !eval.Holds(left, d, eval.Assignment{}) {
		t.Errorf("left side %v should have assignments", left)
	}
	if !eval.Holds(right, d, eval.Assignment{}) {
		t.Errorf("right side %v should have assignments", right)
	}
	// The inequality z != x is covered by the left side (vars x,y,z).
	if len(left.Ineqs) != 1 || left.Ineqs[0].Left.Name != "z" {
		t.Errorf("left ineqs = %v, want [z != x]", left.Ineqs)
	}
}

func TestExplainFirstAtomEmpty(t *testing.T) {
	d := db.New(chainSchema())
	d.InsertFact(db.NewFact("R2", "b1", "c1"))
	q := cq.MustParse("(x, y, z) :- R1(x, y), R2(y, z)")
	ex, ok := Explain(q, d)
	if !ok {
		t.Fatalf("Explain: want picky join")
	}
	if ex.PickyPos != 1 {
		t.Errorf("PickyPos = %d, want 1 (clamped at first scan)", ex.PickyPos)
	}
}

func TestExplainWholeQueryNonEmpty(t *testing.T) {
	d := db.New(chainSchema())
	d.InsertFact(db.NewFact("R1", "a1", "b1"))
	d.InsertFact(db.NewFact("R2", "b1", "c1"))
	q := cq.MustParse("(x, y, z) :- R1(x, y), R2(y, z)")
	ex, ok := Explain(q, d)
	if ok {
		t.Errorf("Explain = %v, want ok=false when Q(D) non-empty", ex)
	}
	if ex.PickyPos != 2 {
		t.Errorf("PickyPos = %d, want len(order)", ex.PickyPos)
	}
}

func TestExplainSingleAtom(t *testing.T) {
	d := db.New(chainSchema())
	q := cq.MustParse("(x, y) :- R1(x, y)")
	if _, ok := Explain(q, d); ok {
		t.Errorf("single-atom query has no join to blame")
	}
}

// TestExplainPirlo drives Explain on the paper's Example 5.4: Q2|Pirlo over
// the Figure 1 database. The Players+Goals+Games prefix joins fine; the
// Teams(ITA, EU) atom is missing from D, so the picky join is at the end.
func TestExplainPirlo(t *testing.T) {
	d, _ := dataset.Figure1()
	q := dataset.IntroQ2()
	qt, err := q.Embed(db.Tuple{"Andrea Pirlo"})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	ex, ok := Explain(qt, d)
	if !ok {
		t.Fatalf("Explain: want a picky join for the Pirlo query")
	}
	// Atoms: 0 Players, 1 Goals, 2 Games, 3 Teams. The first three join; the
	// Teams atom kills the result.
	if ex.PickyPos != 3 {
		t.Errorf("PickyPos = %d, want 3", ex.PickyPos)
	}
	right := ex.Right()
	if len(right) != 1 || qt.Atoms[right[0]].Rel != "Teams" {
		t.Errorf("right side = %v, want the Teams atom", right)
	}
}
