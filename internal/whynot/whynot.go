// Package whynot locates the "picky" join that explains why a query has no
// answers over a database, in the spirit of the WhyNot? system of Tran & Chan
// that the paper's provenance-directed split builds on (§5.2). Given Q|t with
// Q|t(D) = ∅, it orders the atoms into a connected left-deep plan, finds the
// longest prefix whose subquery still has valid assignments in D, and reports
// the join between that prefix and the remaining atoms as the frontier picky
// operator. The provenance split cuts the query exactly there, so both sides
// are likely to have assignments in D (mirroring Figure 2, right).
package whynot

import (
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
)

// Explanation describes the frontier picky join of a query over a database.
type Explanation struct {
	// Order is a connected left-deep ordering of atom indexes into the query.
	Order []int
	// PickyPos is the length of the longest prefix of Order whose induced
	// subquery (with covered inequalities) has at least one valid assignment
	// in D. The picky join combines Order[:PickyPos] with Order[PickyPos:].
	// PickyPos is clamped to [1, len(Order)-1] so both sides are non-empty
	// as atom sets; PickyPos == len(Order) means the whole query already has
	// assignments (nothing is picky — only possible when Q(D) ≠ ∅).
	PickyPos int
}

// Left returns the atom indexes on the non-empty (prefix) side of the join.
func (e Explanation) Left() []int { return e.Order[:e.PickyPos] }

// Right returns the atom indexes on the other side of the picky join.
func (e Explanation) Right() []int { return e.Order[e.PickyPos:] }

// Explain computes the Explanation for q over d. Queries with fewer than two
// atoms have no join to blame; ok is false for those.
func Explain(q *cq.Query, d db.Reader) (Explanation, bool) {
	if len(q.Atoms) < 2 {
		return Explanation{}, false
	}
	order := ConnectedOrder(q)
	// Longest non-empty prefix. The empty prefix is vacuously non-empty, so
	// start at 1: even if the first atom scans to nothing, the "join" we
	// report is scan(atom0) ⋈ rest.
	picky := 1
	for k := 1; k <= len(order); k++ {
		sub := cq.SubqueryOf(q, order[:k])
		if !eval.Holds(sub, d, eval.Assignment{}) {
			break
		}
		picky = k
	}
	if picky == len(order) {
		return Explanation{Order: order, PickyPos: picky}, false
	}
	return Explanation{Order: order, PickyPos: picky}, true
}

// ConnectedOrder orders atom indexes so that each atom (when possible) shares
// a variable with some earlier atom, producing a connected left-deep plan.
// Ties are broken by original position, so the order is deterministic.
func ConnectedOrder(q *cq.Query) []int {
	n := len(q.Atoms)
	used := make([]bool, n)
	order := make([]int, 0, n)
	boundVars := make(map[string]bool)

	add := func(i int) {
		used[i] = true
		order = append(order, i)
		for v := range q.Atoms[i].Vars() {
			boundVars[v] = true
		}
	}
	add(0)
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := false
			for v := range q.Atoms[i].Vars() {
				if boundVars[v] {
					connected = true
					break
				}
			}
			if connected {
				next = i
				break
			}
		}
		if next == -1 { // disconnected query: start a new component
			for i := 0; i < n; i++ {
				if !used[i] {
					next = i
					break
				}
			}
		}
		add(next)
	}
	return order
}
