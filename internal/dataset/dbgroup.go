package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// DBGroupSchema returns the schema of the §7.1 DBGroup database: group
// members, their research activities, publications, academic events,
// grants and sponsored travels. "Recent" marks the years within the last
// 30 months of the report, making the paper's time-window queries
// expressible as CQ≠.
func DBGroupSchema() *schema.Schema {
	return schema.New(
		schema.Relation{Name: "Members", Attrs: []string{"name", "role", "startyear"}, Key: []string{"name"}},
		schema.Relation{Name: "Publications", Attrs: []string{"title", "year", "topic", "venue"}, Key: []string{"title"}},
		schema.Relation{Name: "AuthorOf", Attrs: []string{"member", "title"}},
		schema.Relation{Name: "Grants", Attrs: []string{"name", "agency"}, Key: []string{"name"}},
		schema.Relation{Name: "GrantTopics", Attrs: []string{"grant", "topic"}},
		schema.Relation{Name: "FundedBy", Attrs: []string{"member", "grant"}},
		schema.Relation{Name: "Events", Attrs: []string{"name", "year", "type", "topic"}, Key: []string{"name"}},
		schema.Relation{Name: "Talks", Attrs: []string{"member", "event", "kind"}},
		schema.Relation{Name: "Travels", Attrs: []string{"member", "event", "sponsor"}},
		schema.Relation{Name: "Recent", Attrs: []string{"year"}},
	)
}

// DBGroup domain constants.
var (
	dbgroupRoles  = []string{"Student", "Postdoc", "Faculty", "Alumni"}
	dbgroupTopics = []string{"Crowdsourcing", "Provenance", "DataCleaning", "Streams", "Graphs", "Privacy"}
	dbgroupVenues = []string{"SIGMOD", "VLDB", "PODS", "ICDE", "EDBT", "CIKM"}
	dbgroupGrants = [][2]string{
		{"ERC", "EU"}, {"MoDaS", "EU"}, {"ISF-0423", "ISF"},
		{"BSF-112", "BSF"}, {"MAGNET", "IIA"}, {"NSF-1450560", "NSF"},
	}
	dbgroupEventTypes = []string{"Conference", "Workshop"}
	dbgroupTalkKinds  = []string{"Keynote", "Tutorial", "Regular"}
	dbgroupYears      = []string{"2006", "2007", "2008", "2009", "2010", "2011", "2012", "2013", "2014", "2015"}
	dbgroupRecent     = []string{"2013", "2014", "2015"} // the last 30 months of the report period
)

// DBGroupOpts tunes the generated DBGroup ground truth.
type DBGroupOpts struct {
	// Members is the number of group members over the 10-year history
	// (default 50).
	Members int
	// Publications is the number of papers (default 380).
	Publications int
	// Events is the number of academic events (default 90).
	Events int
	// Seed drives the deterministic generator (default 1).
	Seed int64
}

func (o *DBGroupOpts) applyDefaults() {
	if o.Members == 0 {
		o.Members = 50
	}
	if o.Publications == 0 {
		o.Publications = 380
	}
	if o.Events == 0 {
		o.Events = 90
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// DBGroup generates the ground truth of the §7.1 DBGroup database:
// roughly 2000 tuples of members, publications, grants, events, talks and
// travels, "created about 10 years ago and continuously maintained".
func DBGroup(opts DBGroupOpts) *db.Database {
	opts.applyDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	d := db.New(DBGroupSchema())

	for _, y := range dbgroupRecent {
		mustInsert(d, "Recent", []string{y})
	}
	for _, g := range dbgroupGrants {
		mustInsert(d, "Grants", []string{g[0], g[1]})
		// Each grant covers 2-3 topics.
		n := 2 + rng.Intn(2)
		perm := rng.Perm(len(dbgroupTopics))
		for _, ti := range perm[:n] {
			mustInsert(d, "GrantTopics", []string{g[0], dbgroupTopics[ti]})
		}
	}

	members := make([]string, 0, opts.Members)
	for i := 0; i < opts.Members; i++ {
		name := fmt.Sprintf("Member%02d", i+1)
		// Groups are student-heavy: ~half the members are students.
		role := "Student"
		if rng.Intn(2) == 0 {
			role = dbgroupRoles[rng.Intn(len(dbgroupRoles))]
		}
		start := dbgroupYears[rng.Intn(len(dbgroupYears))]
		mustInsert(d, "Members", []string{name, role, start})
		members = append(members, name)
		// Funding: most members are funded by 1-2 grants.
		n := 1 + rng.Intn(2)
		perm := rng.Perm(len(dbgroupGrants))
		for _, gi := range perm[:n] {
			mustInsert(d, "FundedBy", []string{name, dbgroupGrants[gi][0]})
		}
	}

	events := make([]string, 0, opts.Events)
	for i := 0; i < opts.Events; i++ {
		name := fmt.Sprintf("Event%02d", i+1)
		// Recent years are over-represented (the report covers them).
		year := dbgroupYears[rng.Intn(len(dbgroupYears))]
		if rng.Intn(2) == 0 {
			year = dbgroupRecent[rng.Intn(len(dbgroupRecent))]
		}
		typ := dbgroupEventTypes[rng.Intn(len(dbgroupEventTypes))]
		topic := dbgroupTopics[rng.Intn(len(dbgroupTopics))]
		mustInsert(d, "Events", []string{name, year, typ, topic})
		events = append(events, name)
	}

	for i := 0; i < opts.Publications; i++ {
		title := fmt.Sprintf("Paper%03d", i+1)
		year := dbgroupYears[rng.Intn(len(dbgroupYears))]
		topic := dbgroupTopics[rng.Intn(len(dbgroupTopics))]
		venue := dbgroupVenues[rng.Intn(len(dbgroupVenues))]
		mustInsert(d, "Publications", []string{title, year, topic, venue})
		// 1-3 authors from the group.
		n := 1 + rng.Intn(3)
		perm := rng.Perm(len(members))
		for _, mi := range perm[:n] {
			mustInsert(d, "AuthorOf", []string{members[mi], title})
		}
	}

	// Talks: keynotes/tutorials/regular talks at events.
	for i := 0; i < opts.Events*3; i++ {
		m := members[rng.Intn(len(members))]
		e := events[rng.Intn(len(events))]
		kind := dbgroupTalkKinds[rng.Intn(len(dbgroupTalkKinds))]
		mustInsert(d, "Talks", []string{m, e, kind})
	}

	// Travels: sponsored conference attendance; ERC (the report's grant)
	// sponsors a sizeable share.
	for i := 0; i < opts.Events*3; i++ {
		m := members[rng.Intn(len(members))]
		e := events[rng.Intn(len(events))]
		sponsor := dbgroupGrants[rng.Intn(len(dbgroupGrants))][0]
		if rng.Intn(3) == 0 {
			sponsor = "ERC"
		}
		mustInsert(d, "Travels", []string{m, e, sponsor})
	}
	return d
}

// DBGroup report queries of §7.1 (the "last grant report").

// DBGroupQ1 finds all keynotes and tutorials on topics related to ERC —
// a union of two CQs over the talk kind.
func DBGroupQ1() *cq.Union {
	return cq.MustParseUnion(
		"q1(m, e) :- Talks(m, e, Keynote), Events(e, y, tp, topic), GrantTopics(ERC, topic) ; " +
			"q1(m, e) :- Talks(m, e, Tutorial), Events(e, y, tp, topic), GrantTopics(ERC, topic)")
}

// DBGroupQ2 finds all current group members financed by ERC.
func DBGroupQ2() *cq.Query {
	return cq.MustParse("q2(m) :- Members(m, r, y), FundedBy(m, ERC), r != Alumni.")
}

// DBGroupQ3 finds all students who participated in conferences in the past
// 30 months, where the travel was sponsored by ERC.
func DBGroupQ3() *cq.Query {
	return cq.MustParse("q3(m, e) :- Members(m, Student, y), Travels(m, e, ERC), Events(e, y2, Conference, tp), Recent(y2).")
}

// DBGroupQ4 finds all publications with the topic "crowdsourcing" published
// in the last 30 months.
func DBGroupQ4() *cq.Query {
	return cq.MustParse("q4(p) :- Publications(p, y, Crowdsourcing, v), Recent(y).")
}
