package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// SoccerSchema returns the schema of the full Soccer database of §7.2:
// the Figure 1 relations plus clubs and player-club affiliations ("games,
// goals, players, teams (national), clubs, etc.").
func SoccerSchema() *schema.Schema {
	return schema.New(
		schema.Relation{Name: "Games", Attrs: []string{"date", "winner", "loser", "stage", "result"}, Key: []string{"date"}},
		schema.Relation{Name: "Teams", Attrs: []string{"name", "continent"}, Key: []string{"name"}},
		schema.Relation{Name: "Players", Attrs: []string{"name", "team", "birthyear", "birthplace"}, Key: []string{"name"}},
		schema.Relation{Name: "Goals", Attrs: []string{"player", "date"}},
		schema.Relation{Name: "Clubs", Attrs: []string{"name", "country"}, Key: []string{"name"}},
		schema.Relation{Name: "PlaysFor", Attrs: []string{"player", "club"}},
	)
}

// Tournament stages.
const (
	StageGroup   = "Group"
	StageRound16 = "R16"
	StageQuarter = "QF"
	StageSemi    = "SF"
	StageFinal   = "Final"
)

// nationalTeams is the pool of national teams with continents used by the
// generator (continent codes as in Figure 1: EU, SA, NA, AS, AF, OC).
var nationalTeams = [][2]string{
	{"GER", "EU"}, {"ESP", "EU"}, {"ITA", "EU"}, {"FRA", "EU"}, {"NED", "EU"},
	{"ENG", "EU"}, {"POR", "EU"}, {"BEL", "EU"}, {"SWE", "EU"}, {"POL", "EU"},
	{"CRO", "EU"}, {"DEN", "EU"}, {"SUI", "EU"}, {"AUT", "EU"}, {"HUN", "EU"},
	{"CZE", "EU"}, {"RUS", "EU"}, {"SRB", "EU"},
	{"BRA", "SA"}, {"ARG", "SA"}, {"URU", "SA"}, {"CHI", "SA"}, {"COL", "SA"},
	{"PER", "SA"}, {"PAR", "SA"}, {"ECU", "SA"},
	{"MEX", "NA"}, {"USA", "NA"}, {"CRC", "NA"}, {"HON", "NA"},
	{"JPN", "AS"}, {"KOR", "AS"}, {"IRN", "AS"}, {"KSA", "AS"}, {"AUS", "AS"},
	{"NGA", "AF"}, {"CMR", "AF"}, {"GHA", "AF"}, {"SEN", "AF"}, {"EGY", "AF"},
	{"NZL", "OC"},
}

// clubPool is the pool of club teams with countries.
var clubPool = [][2]string{
	{"Bayern", "GER"}, {"Dortmund", "GER"}, {"RealMadrid", "ESP"}, {"Barcelona", "ESP"},
	{"Atletico", "ESP"}, {"Juventus", "ITA"}, {"Milan", "ITA"}, {"Inter", "ITA"},
	{"PSG", "FRA"}, {"Lyon", "FRA"}, {"Ajax", "NED"}, {"PSV", "NED"},
	{"ManUnited", "ENG"}, {"Liverpool", "ENG"}, {"Chelsea", "ENG"}, {"Arsenal", "ENG"},
	{"Porto", "POR"}, {"Benfica", "POR"}, {"Anderlecht", "BEL"}, {"Celtic", "EU"},
	{"Flamengo", "BRA"}, {"Santos", "BRA"}, {"BocaJuniors", "ARG"}, {"RiverPlate", "ARG"},
	{"Penarol", "URU"}, {"ColoColo", "CHI"}, {"America", "MEX"}, {"LAGalaxy", "USA"},
	{"Kashima", "JPN"}, {"AlAhly", "EGY"},
}

// SoccerOpts tunes the generated Soccer ground truth.
type SoccerOpts struct {
	// Tournaments is the number of World Cup editions (default 20,
	// 1930–2014 skipping the war years, as in the real history).
	Tournaments int
	// TeamsPerCup is the number of participating teams per edition
	// (default 16: 4 groups of 4 plus a 16-team knockout bracket).
	TeamsPerCup int
	// SquadSize is the number of players generated per national team
	// (default 11).
	SquadSize int
	// Seed drives the deterministic generator (default 1).
	Seed int64
}

func (o *SoccerOpts) applyDefaults() {
	if o.Tournaments == 0 {
		o.Tournaments = 20
	}
	if o.TeamsPerCup == 0 {
		o.TeamsPerCup = 16
	}
	if o.SquadSize == 0 {
		o.SquadSize = 11
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// worldCupYears are the 20 editions 1930–2014 (no 1942/1946 cups).
var worldCupYears = []int{
	1930, 1934, 1938, 1950, 1954, 1958, 1962, 1966, 1970, 1974,
	1978, 1982, 1986, 1990, 1994, 1998, 2002, 2006, 2010, 2014,
}

// Soccer generates the ground-truth Soccer database of §7.2: a deterministic
// synthetic World Cup history of roughly 5000 tuples (the paper's scale).
// The same options always produce the same database.
func Soccer(opts SoccerOpts) *db.Database {
	opts.applyDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	d := db.New(SoccerSchema())

	for _, t := range nationalTeams {
		mustInsert(d, "Teams", []string{t[0], t[1]})
	}
	for _, c := range clubPool {
		mustInsert(d, "Clubs", []string{c[0], c[1]})
	}

	// Squads: SquadSize players per team, each affiliated with a club.
	playersByTeam := make(map[string][]string)
	for _, t := range nationalTeams {
		team := t[0]
		for i := 0; i < opts.SquadSize; i++ {
			name := fmt.Sprintf("%s Player%02d", team, i+1)
			birthyear := fmt.Sprintf("%d", 1955+rng.Intn(40))
			birthplace := team
			if rng.Intn(10) == 0 { // a few players born abroad
				birthplace = nationalTeams[rng.Intn(len(nationalTeams))][0]
			}
			mustInsert(d, "Players", []string{name, team, birthyear, birthplace})
			club := clubPool[rng.Intn(len(clubPool))][0]
			mustInsert(d, "PlaysFor", []string{name, club})
			playersByTeam[team] = append(playersByTeam[team], name)
		}
	}

	years := worldCupYears
	if opts.Tournaments < len(years) {
		years = years[len(years)-opts.Tournaments:]
	}
	for _, year := range years {
		generateTournament(d, rng, year, opts.TeamsPerCup, playersByTeam)
	}
	return d
}

// generateTournament simulates one World Cup edition: a group stage (round
// robin in groups of 4) followed by a 16-team knockout bracket.
func generateTournament(d *db.Database, rng *rand.Rand, year, nTeams int, squads map[string][]string) {
	// Participating teams: stronger (earlier-listed) teams are more likely.
	perm := rng.Perm(len(nationalTeams))
	teams := make([]string, 0, nTeams)
	for _, i := range perm {
		teams = append(teams, nationalTeams[i][0])
		if len(teams) == nTeams {
			break
		}
	}
	day := 1
	nextDate := func() string {
		date := fmt.Sprintf("%02d.%02d.%02d", (day-1)%28+1, 6+(day-1)/28, year%100)
		day++
		return date
	}

	// Group stage: groups of 4, round robin.
	for g := 0; g+4 <= len(teams); g += 4 {
		group := teams[g : g+4]
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				playGame(d, rng, nextDate(), group[i], group[j], StageGroup, squads)
			}
		}
	}

	// Knockout: R16 over all 16 teams (winners advance).
	stageOf := map[int]string{16: StageRound16, 8: StageQuarter, 4: StageSemi, 2: StageFinal}
	round := append([]string(nil), teams...)
	for len(round) >= 2 {
		stage, ok := stageOf[len(round)]
		if !ok {
			stage = StageRound16
		}
		var winners []string
		for i := 0; i+1 < len(round); i += 2 {
			w := playGame(d, rng, nextDate(), round[i], round[i+1], stage, squads)
			winners = append(winners, w)
		}
		round = winners
	}
}

// playGame records one decided game (winner listed first) plus its goals,
// returning the winner.
func playGame(d *db.Database, rng *rand.Rand, date, a, b, stage string, squads map[string][]string) string {
	winner, loser := a, b
	if rng.Intn(2) == 0 {
		winner, loser = b, a
	}
	wGoals := 1 + rng.Intn(4)
	lGoals := rng.Intn(wGoals)
	mustInsert(d, "Games", []string{date, winner, loser, stage, fmt.Sprintf("%d:%d", wGoals, lGoals)})
	score := func(team string, n int) {
		squad := squads[team]
		for i := 0; i < n && len(squad) > 0; i++ {
			player := squad[rng.Intn(len(squad))]
			// Goals has set semantics: a player scoring twice in a game is
			// one fact, like in the paper's schema (player, date).
			mustInsert(d, "Goals", []string{player, date})
		}
	}
	score(winner, wGoals)
	score(loser, lGoals)
	return winner
}

// Soccer queries Q1–Q5 of §7.2, ordered from smallest to largest result.

// SoccerQ1 finds European teams who lost at least two finals.
func SoccerQ1() *cq.Query {
	return cq.MustParse("q1(x) :- Games(d1, y, x, Final, u1), Games(d2, z, x, Final, u2), Teams(x, EU), d1 != d2.")
}

// SoccerQ2 finds pairs of teams from the same continent that played at least
// twice against each other (winning both times, in this CQ≠ phrasing).
func SoccerQ2() *cq.Query {
	return cq.MustParse("q2(x, y) :- Games(d1, x, y, s1, u1), Games(d2, x, y, s2, u2), Teams(x, c), Teams(y, c), d1 != d2.")
}

// SoccerQ3 finds non-Asian teams that reached the knockout phase (won a
// round-of-16 game) and won at least one other game.
func SoccerQ3() *cq.Query {
	return cq.MustParse("q3(x) :- Games(d1, x, y, s1, u1), Games(d2, x, z, R16, u2), Teams(x, c), c != AS, d1 != d2.")
}

// SoccerQ4 finds teams that lost two games with the same score.
func SoccerQ4() *cq.Query {
	return cq.MustParse("q4(x) :- Games(d1, y, x, s1, u), Games(d2, z, x, s2, u), d1 != d2.")
}

// SoccerQ5 finds teams that won at least two games, one of them against a
// South American team.
func SoccerQ5() *cq.Query {
	return cq.MustParse("q5(x) :- Games(d1, x, y, s1, u1), Games(d2, x, z, s2, u2), Teams(z, SA), d1 != d2.")
}

// SoccerQueries returns Q1–Q5 in the paper's order.
func SoccerQueries() []*cq.Query {
	return []*cq.Query{SoccerQ1(), SoccerQ2(), SoccerQ3(), SoccerQ4(), SoccerQ5()}
}
