package dataset

import (
	"testing"

	"repro/internal/db"
	"repro/internal/eval"
)

func TestFigure1Shape(t *testing.T) {
	d, dg := Figure1()
	// Figure 1's D: 9 games, 4 teams, 3 players, 3 goals.
	counts := map[string]int{"Games": 9, "Teams": 4, "Players": 3, "Goals": 3}
	for rel, want := range counts {
		if got := d.Relation(rel).Len(); got != want {
			t.Errorf("|D.%s| = %d, want %d", rel, got, want)
		}
	}
	// Wrong tuples of the figure are in D but not DG.
	wrong := []db.Fact{
		db.NewFact("Games", "12.07.98", "ESP", "NED", "Final", "4:2"),
		db.NewFact("Games", "17.07.94", "ESP", "NED", "Final", "3:1"),
		db.NewFact("Games", "25.06.78", "ESP", "NED", "Final", "1:0"),
		db.NewFact("Teams", "BRA", "EU"),
		db.NewFact("Teams", "NED", "SA"),
		db.NewFact("Goals", "Francesco Totti", "09.07.06"),
	}
	for _, f := range wrong {
		if !d.Has(f) {
			t.Errorf("wrong tuple %v missing from D", f)
		}
		if dg.Has(f) {
			t.Errorf("wrong tuple %v present in DG", f)
		}
	}
	// The missing tuple of the figure is in DG but not D.
	missing := db.NewFact("Teams", "ITA", "EU")
	if d.Has(missing) {
		t.Errorf("missing tuple %v present in D", missing)
	}
	if !dg.Has(missing) {
		t.Errorf("missing tuple %v absent from DG", missing)
	}
}

func TestFigure1Deterministic(t *testing.T) {
	d1, dg1 := Figure1()
	d2, dg2 := Figure1()
	if !d1.Equal(d2) || !dg1.Equal(dg2) {
		t.Errorf("Figure1 is not deterministic")
	}
}

func TestSoccerScaleAndDeterminism(t *testing.T) {
	d1 := Soccer(SoccerOpts{})
	if n := d1.Len(); n < 3000 || n > 7000 {
		t.Errorf("|Soccer| = %d, want the paper's ~5000 scale", n)
	}
	d2 := Soccer(SoccerOpts{})
	if !d1.Equal(d2) {
		t.Errorf("Soccer generator is not deterministic")
	}
	d3 := Soccer(SoccerOpts{Seed: 2})
	if d1.Equal(d3) {
		t.Errorf("different seeds produced identical databases")
	}
}

func TestSoccerReferentialShape(t *testing.T) {
	d := Soccer(SoccerOpts{Tournaments: 4})
	// Every game's winner and loser are known teams.
	teams := d.Relation("Teams")
	d.Relation("Games").Each(func(tp db.Tuple) bool {
		for _, col := range []int{1, 2} {
			found := teams.Scan([]db.Binding{{Col: 0, Value: tp[col]}})
			if len(found) == 0 {
				t.Errorf("game %v references unknown team %s", tp, tp[col])
				return false
			}
		}
		if tp[1] == tp[2] {
			t.Errorf("game %v has a team playing itself", tp)
		}
		return true
	})
	// Every goal references an existing player and game date.
	players := d.Relation("Players")
	games := d.Relation("Games")
	d.Relation("Goals").Each(func(tp db.Tuple) bool {
		if len(players.Scan([]db.Binding{{Col: 0, Value: tp[0]}})) == 0 {
			t.Errorf("goal %v references unknown player", tp)
			return false
		}
		if len(games.Scan([]db.Binding{{Col: 0, Value: tp[1]}})) == 0 {
			t.Errorf("goal %v references unknown game date", tp)
			return false
		}
		return true
	})
	// Finals exist: one per tournament.
	finals := games.Scan([]db.Binding{{Col: 3, Value: StageFinal}})
	if len(finals) != 4 {
		t.Errorf("finals = %d, want 4 (one per tournament)", len(finals))
	}
}

func TestSoccerQueriesHaveAnswers(t *testing.T) {
	d := Soccer(SoccerOpts{})
	sizes := make([]int, 0, 5)
	for i, q := range SoccerQueries() {
		if err := q.Validate(d.Schema()); err != nil {
			t.Fatalf("Q%d invalid: %v", i+1, err)
		}
		res := eval.Result(q, d)
		if len(res) == 0 {
			t.Errorf("Q%d has no answers over the ground truth", i+1)
		}
		sizes = append(sizes, len(res))
	}
	// The paper orders Q1..Q5 from smallest to largest result; check the
	// broad trend (Q1 smallest, Q5 among the largest).
	if sizes[0] > sizes[3] || sizes[0] > sizes[4] {
		t.Errorf("result sizes %v: Q1 should be smallest", sizes)
	}
}

func TestDBGroupScaleAndDeterminism(t *testing.T) {
	d1 := DBGroup(DBGroupOpts{})
	if n := d1.Len(); n < 1500 || n > 3000 {
		t.Errorf("|DBGroup| = %d, want the paper's ~2000 scale", n)
	}
	d2 := DBGroup(DBGroupOpts{})
	if !d1.Equal(d2) {
		t.Errorf("DBGroup generator is not deterministic")
	}
}

func TestDBGroupQueriesHaveAnswers(t *testing.T) {
	d := DBGroup(DBGroupOpts{})
	if err := DBGroupQ1().Validate(d.Schema()); err != nil {
		t.Fatalf("Q1 invalid: %v", err)
	}
	if got := eval.ResultUnion(DBGroupQ1(), d); len(got) == 0 {
		t.Errorf("Q1 (keynotes/tutorials) has no answers")
	}
	queries := []struct {
		name string
		run  func() int
	}{
		{"Q2", func() int { return len(eval.Result(DBGroupQ2(), d)) }},
		{"Q3", func() int { return len(eval.Result(DBGroupQ3(), d)) }},
		{"Q4", func() int { return len(eval.Result(DBGroupQ4(), d)) }},
	}
	for _, q := range queries {
		if q.run() == 0 {
			t.Errorf("%s has no answers over the ground truth", q.name)
		}
	}
}

func TestDBGroupQueryValidation(t *testing.T) {
	s := DBGroupSchema()
	if err := DBGroupQ2().Validate(s); err != nil {
		t.Errorf("Q2: %v", err)
	}
	if err := DBGroupQ3().Validate(s); err != nil {
		t.Errorf("Q3: %v", err)
	}
	if err := DBGroupQ4().Validate(s); err != nil {
		t.Errorf("Q4: %v", err)
	}
}
