// Package dataset provides the databases the paper evaluates on: the
// Figure 1 World Cup sample (with its exact wrong and missing tuples), a
// deterministic full-scale Soccer database generator (§7.2, ~5000 tuples), a
// DBGroup database generator (§7.1, ~2000 tuples), and the noise model
// (degree of data cleanliness, noise skewness, degree of result cleanliness).
package dataset

import (
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// WorldCupSchema returns the four-relation schema of Figure 1.
func WorldCupSchema() *schema.Schema {
	return schema.New(
		schema.Relation{Name: "Games", Attrs: []string{"date", "winner", "runnerup", "stage", "result"}, Key: []string{"date"}},
		schema.Relation{Name: "Teams", Attrs: []string{"name", "continent"}, Key: []string{"name"}},
		schema.Relation{Name: "Players", Attrs: []string{"name", "team", "birthyear", "birthplace"}, Key: []string{"name"}},
		schema.Relation{Name: "Goals", Attrs: []string{"player", "date"}},
	)
}

// Figure1 returns the dirty database D and ground truth DG of the paper's
// Figure 1. Dark-gray tuples of the figure (wrong) are present in D and
// absent from DG; light-gray tuples (missing) are absent from D and present
// in DG. The paper's 09.06.06/09.07.06 date inconsistency between Games and
// Goals is normalized to 09.07.06 so that Example 5.4's join goes through.
func Figure1() (d, dg *db.Database) {
	s := WorldCupSchema()
	d = db.New(s)
	dg = db.New(s)

	correctGames := [][]string{
		{"13.07.14", "GER", "ARG", "Final", "1:0"},
		{"11.07.10", "ESP", "NED", "Final", "1:0"},
		{"09.07.06", "ITA", "FRA", "Final", "5:3"},
		{"30.06.02", "BRA", "GER", "Final", "2:0"},
		{"08.07.90", "GER", "ARG", "Final", "1:0"},
		{"11.07.82", "ITA", "GER", "Final", "4:1"},
	}
	wrongGames := [][]string{ // dark gray in Figure 1
		{"12.07.98", "ESP", "NED", "Final", "4:2"},
		{"17.07.94", "ESP", "NED", "Final", "3:1"},
		{"25.06.78", "ESP", "NED", "Final", "1:0"},
	}
	trueGamesOnlyInDG := [][]string{ // the real finals the wrong tuples displaced
		{"12.07.98", "FRA", "BRA", "Final", "3:0"},
		{"17.07.94", "BRA", "ITA", "Final", "3:2"},
		{"25.06.78", "ARG", "NED", "Final", "3:1"},
	}
	for _, g := range correctGames {
		mustInsert(d, "Games", g)
		mustInsert(dg, "Games", g)
	}
	for _, g := range wrongGames {
		mustInsert(d, "Games", g)
	}
	for _, g := range trueGamesOnlyInDG {
		mustInsert(dg, "Games", g)
	}

	// Teams: BRA/EU and NED/SA are wrong in D; ITA/EU is missing from D.
	for _, t := range [][]string{{"GER", "EU"}, {"ESP", "EU"}} {
		mustInsert(d, "Teams", t)
		mustInsert(dg, "Teams", t)
	}
	mustInsert(d, "Teams", []string{"BRA", "EU"}) // wrong
	mustInsert(d, "Teams", []string{"NED", "SA"}) // wrong
	for _, t := range [][]string{{"BRA", "SA"}, {"NED", "EU"}, {"ITA", "EU"}, {"FRA", "EU"}, {"ARG", "SA"}} {
		mustInsert(dg, "Teams", t)
	}

	players := [][]string{
		{"Mario Götze", "GER", "1992", "GER"},
		{"Andrea Pirlo", "ITA", "1979", "ITA"},
		{"Francesco Totti", "ITA", "1976", "ITA"},
	}
	for _, p := range players {
		mustInsert(d, "Players", p)
		mustInsert(dg, "Players", p)
	}

	for _, g := range [][]string{{"Mario Götze", "13.07.14"}, {"Andrea Pirlo", "09.07.06"}} {
		mustInsert(d, "Goals", g)
		mustInsert(dg, "Goals", g)
	}
	mustInsert(d, "Goals", []string{"Francesco Totti", "09.07.06"}) // wrong

	return d, dg
}

// IntroQ1 is the paper's introductory query Q1: European teams that won the
// World Cup at least twice. Q1(D) = {(GER), (ESP)}; Q1(DG) = {(GER), (ITA)}.
func IntroQ1() *cq.Query {
	return cq.MustParse("(x) :- Games(d1, x, y, Final, u1), Games(d2, x, z, Final, u2), Teams(x, EU), d1 != d2.")
}

// IntroQ2 is the query of Example 5.4: European players who scored a goal in
// a World Cup final game.
func IntroQ2() *cq.Query {
	return cq.MustParse("(x) :- Players(x, y, z, w), Goals(x, d), Games(d, y, v, Final, u), Teams(y, EU).")
}

func mustInsert(d *db.Database, rel string, vals []string) {
	if _, err := d.InsertFact(db.NewFact(rel, vals...)); err != nil {
		panic(err)
	}
}
