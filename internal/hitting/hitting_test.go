package hitting

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSingletonsAndUniqueMinimal(t *testing.T) {
	// Example 4.4: witnesses {t1} and {t1,t2}: unique minimal hitting set {t1}.
	ss := NewSetSystem([]string{"t1"}, []string{"t1", "t2"})
	got, unique := ss.UniqueMinimal()
	if !unique || !reflect.DeepEqual(got, []string{"t1"}) {
		t.Errorf("UniqueMinimal = %v, %v; want [t1], true", got, unique)
	}
	// {t1,t2} and {t1,t3}: two minimal hitting sets, none unique.
	ss2 := NewSetSystem([]string{"t1", "t2"}, []string{"t1", "t3"})
	if _, unique := ss2.UniqueMinimal(); unique {
		t.Errorf("UniqueMinimal should not exist for {t1,t2},{t1,t3}")
	}
}

func TestUniqueMinimalExample46Endgame(t *testing.T) {
	// End of Example 4.6: sets {t2}, {t2,t4}, {t4} -> unique minimal {t2,t4}.
	ss := NewSetSystem([]string{"t2"}, []string{"t2", "t4"}, []string{"t4"})
	got, unique := ss.UniqueMinimal()
	if !unique || !reflect.DeepEqual(got, []string{"t2", "t4"}) {
		t.Errorf("UniqueMinimal = %v, %v; want [t2 t4], true", got, unique)
	}
}

func TestUniqueMinimalEmptySystem(t *testing.T) {
	ss := NewSetSystem()
	got, unique := ss.UniqueMinimal()
	if !unique || got != nil {
		t.Errorf("empty system: UniqueMinimal = %v, %v; want nil, true", got, unique)
	}
}

func TestIsHittingSet(t *testing.T) {
	ss := NewSetSystem([]string{"a", "b"}, []string{"b", "c"}, []string{"d"})
	if !ss.IsHittingSet([]string{"b", "d"}) {
		t.Errorf("IsHittingSet(b,d) = false")
	}
	if ss.IsHittingSet([]string{"b"}) {
		t.Errorf("IsHittingSet(b) = true; d-set not hit")
	}
	if !ss.IsHittingSet([]string{"a", "b", "c", "d"}) {
		t.Errorf("universe should hit everything")
	}
}

func TestIsMinimalHittingSet(t *testing.T) {
	ss := NewSetSystem([]string{"a", "b"}, []string{"b", "c"})
	if !ss.IsMinimalHittingSet([]string{"b"}) {
		t.Errorf("{b} should be minimal")
	}
	if ss.IsMinimalHittingSet([]string{"a", "b"}) {
		t.Errorf("{a,b} is not minimal (b alone suffices)")
	}
	if ss.IsMinimalHittingSet([]string{"a"}) {
		t.Errorf("{a} is not even a hitting set")
	}
	if !ss.IsMinimalHittingSet([]string{"a", "c"}) {
		t.Errorf("{a,c} should be minimal (dropping either misses a set)")
	}
}

func TestMostFrequent(t *testing.T) {
	ss := NewSetSystem([]string{"a", "b"}, []string{"a", "c"}, []string{"a"}, []string{"c"})
	if got := ss.MostFrequent(nil); got != "a" {
		t.Errorf("MostFrequent = %q, want a", got)
	}
	// Tie case with deterministic break: a and b both appear twice.
	ss2 := NewSetSystem([]string{"a"}, []string{"a", "b"}, []string{"b"})
	if got := ss2.MostFrequent(nil); got != "a" {
		t.Errorf("deterministic tie-break = %q, want a (lexicographic)", got)
	}
	// Random tie-break must pick among the maximal elements only.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		got := ss2.MostFrequent(rng)
		if got != "a" && got != "b" {
			t.Fatalf("random tie-break picked non-maximal %q", got)
		}
	}
	if got := NewSetSystem().MostFrequent(nil); got != "" {
		t.Errorf("MostFrequent on empty = %q, want \"\"", got)
	}
}

func TestRemoveSetsContaining(t *testing.T) {
	ss := NewSetSystem([]string{"a", "b"}, []string{"b", "c"}, []string{"c"})
	ss.RemoveSetsContaining("b")
	if ss.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ss.Len())
	}
	if !reflect.DeepEqual(ss.Sets()[0], []string{"c"}) {
		t.Errorf("remaining = %v", ss.Sets())
	}
}

func TestRemoveElement(t *testing.T) {
	ss := NewSetSystem([]string{"a", "b"}, []string{"a"}, []string{"b", "c"})
	emptied := ss.RemoveElement("a")
	if emptied != 1 {
		t.Errorf("emptied = %d, want 1 (the {a} set)", emptied)
	}
	sets := ss.Sets()
	if len(sets) != 2 || !reflect.DeepEqual(sets[0], []string{"b"}) {
		t.Errorf("sets after removal = %v", sets)
	}
}

func TestGreedyIsHittingSet(t *testing.T) {
	ss := NewSetSystem(
		[]string{"t1", "t2", "t3"}, []string{"t2", "t4", "t3"},
		[]string{"t4", "t1", "t3"}, []string{"t1", "t5", "t3"},
		[]string{"t2", "t5", "t3"}, []string{"t4", "t5", "t3"},
	)
	h := ss.Greedy()
	if !ss.IsHittingSet(h) {
		t.Fatalf("Greedy() = %v is not a hitting set", h)
	}
	// t3 occurs in all six witnesses (Example 4.6 structure), so greedy picks
	// it first and it alone hits everything.
	if !reflect.DeepEqual(h, []string{"t3"}) {
		t.Errorf("Greedy = %v, want [t3]", h)
	}
}

func TestExactMinimum(t *testing.T) {
	// Classic case where greedy can overshoot but exact finds 2:
	// sets {a,x1},{a,x2},{b,x1},{b,x2} have minimum hitting set {a,b} or {x1,x2}.
	ss := NewSetSystem([]string{"a", "x1"}, []string{"a", "x2"}, []string{"b", "x1"}, []string{"b", "x2"})
	h := ss.ExactMinimum()
	if len(h) != 2 || !ss.IsHittingSet(h) {
		t.Errorf("ExactMinimum = %v, want a 2-element hitting set", h)
	}
	if got := NewSetSystem().ExactMinimum(); got != nil {
		t.Errorf("ExactMinimum on empty = %v, want nil", got)
	}
}

// TestExactVsGreedyProperty: on random systems the exact minimum is a hitting
// set no larger than greedy's.
func TestExactVsGreedyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		nSets := 1 + rng.Intn(6)
		elems := []string{"a", "b", "c", "d", "e", "f"}
		var sets [][]string
		for i := 0; i < nSets; i++ {
			sz := 1 + rng.Intn(3)
			s := make([]string, 0, sz)
			perm := rng.Perm(len(elems))
			for _, j := range perm[:sz] {
				s = append(s, elems[j])
			}
			sets = append(sets, s)
		}
		ss := NewSetSystem(sets...)
		exact := ss.ExactMinimum()
		greedy := ss.Greedy()
		if !ss.IsHittingSet(exact) {
			t.Fatalf("trial %d: exact %v not hitting %v", trial, exact, ss.Sets())
		}
		if len(exact) > len(greedy) {
			t.Fatalf("trial %d: exact %v larger than greedy %v", trial, exact, greedy)
		}
		if !ss.IsMinimalHittingSet(exact) {
			t.Fatalf("trial %d: exact %v not minimal for %v", trial, exact, ss.Sets())
		}
	}
}

// TestUniqueMinimalTheorem45 checks both directions of Theorem 4.5 on random
// systems by brute-force enumeration of minimal hitting sets.
func TestUniqueMinimalTheorem45(t *testing.T) {
	elems := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(11))
	subsetOf := func(mask int) []string {
		var s []string
		for i, e := range elems {
			if mask&(1<<i) != 0 {
				s = append(s, e)
			}
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		nSets := 1 + rng.Intn(4)
		var sets [][]string
		for i := 0; i < nSets; i++ {
			mask := 1 + rng.Intn(15)
			sets = append(sets, subsetOf(mask))
		}
		ss := NewSetSystem(sets...)
		// Enumerate all minimal hitting sets by brute force.
		var minimals [][]string
		for mask := 0; mask < 16; mask++ {
			h := subsetOf(mask)
			if ss.IsMinimalHittingSet(h) {
				minimals = append(minimals, h)
			}
		}
		got, unique := ss.UniqueMinimal()
		if unique != (len(minimals) == 1) {
			t.Fatalf("trial %d sets %v: UniqueMinimal = %v, brute force found %d minimal hitting sets %v",
				trial, sets, unique, len(minimals), minimals)
		}
		if unique && !reflect.DeepEqual(got, minimals[0]) {
			t.Fatalf("trial %d: UniqueMinimal = %v, want %v", trial, got, minimals[0])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	ss := NewSetSystem([]string{"a", "b"})
	c := ss.Clone()
	c.RemoveElement("a")
	if !reflect.DeepEqual(ss.Sets()[0], []string{"a", "b"}) {
		t.Errorf("Clone shares state")
	}
}

func TestElementsSortedProperty(t *testing.T) {
	f := func(raw [][]string) bool {
		ss := NewSetSystem(raw...)
		elems := ss.Elements()
		return sort.StringsAreSorted(elems)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("Elements not sorted: %v", err)
	}
}

func TestAddEmptySetIgnored(t *testing.T) {
	ss := NewSetSystem([]string{}, nil, []string{"a"})
	if ss.Len() != 1 {
		t.Errorf("Len = %d, want 1 (empty sets ignored)", ss.Len())
	}
}
