// Package hitting implements the hitting-set machinery behind the deletion
// algorithm (§4 of the paper): set systems over string element IDs,
// the singleton rule and unique-minimal-hitting-set detection (Theorem 4.5),
// most-frequent-element selection (the greedy heuristic of Algorithm 1),
// a classic greedy cover, and an exact branch-and-bound minimum hitting set
// used by tests and ablation benchmarks (the problem is NP-hard, Theorem 4.2).
package hitting

import (
	"math/rand"
	"sort"

	"repro/internal/obs"
)

// Metric names the solver records under when a SetSystem carries a recorder.
const (
	// MetricBnBNodes counts branch-and-bound nodes across all ExactMinimum
	// solves (the search cost of the NP-hard exact solver, Theorem 4.2).
	MetricBnBNodes = "hitting.bnb.nodes"
	// MetricBnBNodesPerSolve is the per-solve node-count distribution.
	MetricBnBNodesPerSolve = "hitting.bnb.nodes_per_solve"
)

// SetSystem is the pair (U, S) of Definition 4.3 with the universe left
// implicit (the union of the sets). Elements are string IDs; in the cleaner
// they are fact keys of witness tuples.
type SetSystem struct {
	sets []map[string]bool

	// Obs, when non-nil, receives solver metrics (branch-and-bound node
	// counts). Clones share the recorder.
	Obs *obs.Recorder
}

// NewSetSystem builds a set system from element-ID slices. Empty sets are
// ignored (they cannot be hit and never arise from witnesses).
func NewSetSystem(sets ...[]string) *SetSystem {
	ss := &SetSystem{}
	for _, s := range sets {
		ss.Add(s)
	}
	return ss
}

// Add appends a set (ignored if empty).
func (ss *SetSystem) Add(elems []string) {
	if len(elems) == 0 {
		return
	}
	m := make(map[string]bool, len(elems))
	for _, e := range elems {
		m[e] = true
	}
	ss.sets = append(ss.sets, m)
}

// Len returns the number of sets.
func (ss *SetSystem) Len() int { return len(ss.sets) }

// Empty reports whether no sets remain (everything is hit).
func (ss *SetSystem) Empty() bool { return len(ss.sets) == 0 }

// Sets returns the sets as sorted slices, in insertion order.
func (ss *SetSystem) Sets() [][]string {
	out := make([][]string, len(ss.sets))
	for i, m := range ss.sets {
		out[i] = sortedKeys(m)
	}
	return out
}

// Elements returns the sorted universe: every element of every set.
func (ss *SetSystem) Elements() []string {
	set := make(map[string]bool)
	for _, m := range ss.sets {
		for e := range m {
			set[e] = true
		}
	}
	return sortedKeys(set)
}

// Clone returns an independent copy (sharing the Obs recorder).
func (ss *SetSystem) Clone() *SetSystem {
	out := &SetSystem{sets: make([]map[string]bool, len(ss.sets)), Obs: ss.Obs}
	for i, m := range ss.sets {
		c := make(map[string]bool, len(m))
		for e := range m {
			c[e] = true
		}
		out.sets[i] = c
	}
	return out
}

// Singletons returns the sorted distinct elements of the singleton sets.
func (ss *SetSystem) Singletons() []string {
	set := make(map[string]bool)
	for _, m := range ss.sets {
		if len(m) == 1 {
			for e := range m {
				set[e] = true
			}
		}
	}
	return sortedKeys(set)
}

// IsHittingSet reports whether H intersects every set (Definition 4.3).
func (ss *SetSystem) IsHittingSet(h []string) bool {
	hm := make(map[string]bool, len(h))
	for _, e := range h {
		hm[e] = true
	}
	for _, m := range ss.sets {
		hit := false
		for e := range m {
			if hm[e] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// IsMinimalHittingSet reports whether H is a hitting set from which no
// element can be removed (Definition 4.3).
func (ss *SetSystem) IsMinimalHittingSet(h []string) bool {
	if !ss.IsHittingSet(h) {
		return false
	}
	for i := range h {
		reduced := make([]string, 0, len(h)-1)
		reduced = append(reduced, h[:i]...)
		reduced = append(reduced, h[i+1:]...)
		if ss.IsHittingSet(reduced) {
			return false
		}
	}
	return true
}

// UniqueMinimal implements Theorem 4.5: a unique minimal hitting set exists
// iff the elements of the singleton sets form a hitting set; in that case it
// is that element set. It returns (set, true) when unique, (nil, false)
// otherwise.
func (ss *SetSystem) UniqueMinimal() ([]string, bool) {
	m := ss.Singletons()
	if len(m) == 0 {
		if ss.Empty() {
			return nil, true // vacuously: the empty set hits everything
		}
		return nil, false
	}
	if ss.IsHittingSet(m) {
		return m, true
	}
	return nil, false
}

// Frequencies returns how many sets each element occurs in.
func (ss *SetSystem) Frequencies() map[string]int {
	out := make(map[string]int)
	for _, m := range ss.sets {
		for e := range m {
			out[e]++
		}
	}
	return out
}

// MostFrequent returns the element occurring in the largest number of sets,
// breaking ties uniformly at random with rng (the paper: "QOCO will choose
// randomly between them"). A nil rng breaks ties deterministically by taking
// the lexicographically smallest. It returns "" on an empty system.
func (ss *SetSystem) MostFrequent(rng *rand.Rand) string {
	freq := ss.Frequencies()
	if len(freq) == 0 {
		return ""
	}
	best := -1
	var ties []string
	for _, e := range sortedKeys(toSet(freq)) { // deterministic iteration
		n := freq[e]
		if n > best {
			best = n
			ties = ties[:0]
		}
		if n == best {
			ties = append(ties, e)
		}
	}
	if rng == nil || len(ties) == 1 {
		return ties[0]
	}
	return ties[rng.Intn(len(ties))]
}

// RemoveSetsContaining drops every set that contains e (the element was
// resolved false: all witnesses through it are destroyed).
func (ss *SetSystem) RemoveSetsContaining(e string) {
	out := ss.sets[:0]
	for _, m := range ss.sets {
		if !m[e] {
			out = append(out, m)
		}
	}
	ss.sets = out
}

// RemoveElement deletes e from every set (the element was verified true: it
// can no longer account for any witness). Sets that become empty are dropped;
// an emptied set means the witness consists solely of verified-true facts,
// which cannot happen for a genuinely wrong answer with a correct oracle.
func (ss *SetSystem) RemoveElement(e string) (emptied int) {
	out := ss.sets[:0]
	for _, m := range ss.sets {
		if m[e] {
			delete(m, e)
			if len(m) == 0 {
				emptied++
				continue
			}
		}
		out = append(out, m)
	}
	ss.sets = out
	return emptied
}

// Greedy returns a hitting set built by repeatedly taking the most frequent
// element (deterministic tie-break). Used as a non-interactive baseline and
// in tests; Algorithm 1 interleaves this choice with oracle answers instead.
func (ss *SetSystem) Greedy() []string {
	work := ss.Clone()
	var h []string
	for !work.Empty() {
		e := work.MostFrequent(nil)
		h = append(h, e)
		work.RemoveSetsContaining(e)
	}
	sort.Strings(h)
	return h
}

// ExactMinimum returns a minimum-cardinality hitting set by branch and bound.
// Exponential in the worst case (the problem is NP-hard); intended for the
// small systems in tests and ablations.
func (ss *SetSystem) ExactMinimum() []string {
	h, _ := ss.ExactMinimumNodes()
	return h
}

// ExactMinimumNodes is ExactMinimum reporting the number of branch-and-bound
// nodes explored. When the system carries a recorder the count also lands in
// MetricBnBNodes / MetricBnBNodesPerSolve.
func (ss *SetSystem) ExactMinimumNodes() ([]string, int) {
	if ss.Empty() {
		return nil, 0
	}
	nodes := 0
	defer func() {
		ss.Obs.Add(MetricBnBNodes, int64(nodes))
		ss.Obs.Observe(MetricBnBNodesPerSolve, float64(nodes))
	}()
	best := ss.Greedy() // upper bound
	var rec func(work *SetSystem, chosen []string)
	rec = func(work *SetSystem, chosen []string) {
		nodes++
		if work.Empty() {
			if len(chosen) < len(best) {
				best = append([]string(nil), chosen...)
			}
			return
		}
		if len(chosen)+1 >= len(best) {
			return // even one more element cannot beat best
		}
		// Branch on the elements of the smallest set: one of them must be in
		// any hitting set.
		smallest := work.sets[0]
		for _, m := range work.sets[1:] {
			if len(m) < len(smallest) {
				smallest = m
			}
		}
		for _, e := range sortedKeys(smallest) {
			next := work.Clone()
			next.RemoveSetsContaining(e)
			rec(next, append(chosen, e))
		}
	}
	rec(ss.Clone(), nil)
	sort.Strings(best)
	return best, nodes
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func toSet(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
