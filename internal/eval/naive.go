package eval

import (
	"sort"

	"repro/internal/cq"
	"repro/internal/db"
)

func sortTuples(seen map[string]db.Tuple) []db.Tuple {
	out := make([]db.Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// NaiveEval enumerates A(Q,D) by an unoptimized nested-loop product in atom
// order, checking constraints only at the leaves. It exists as an oracle for
// correctness tests of the indexed evaluator and for ablation benchmarks;
// production callers use Eval.
func NaiveEval(q *cq.Query, d db.Reader) []Assignment {
	var out []Assignment
	var rec func(i int, a Assignment)
	rec = func(i int, a Assignment) {
		if i == len(q.Atoms) {
			for _, e := range q.Ineqs {
				l, lok := a.Resolve(e.Left)
				r, rok := a.Resolve(e.Right)
				if !lok || !rok || l == r {
					return
				}
			}
			if !negsHold(q, d, a) {
				return
			}
			out = append(out, a.Clone())
			return
		}
		atom := q.Atoms[i]
		rel := d.Rel(atom.Rel)
		if rel == nil {
			return
		}
		for _, tuple := range rel.Tuples() {
			bound, ok := bind(a, atom, tuple)
			if !ok {
				continue
			}
			rec(i+1, a)
			rollback(a, bound)
		}
	}
	rec(0, Assignment{})
	sortAssignments(out)
	return out
}

// NaiveResult computes Q(D) via NaiveEval.
func NaiveResult(q *cq.Query, d db.Reader) []db.Tuple {
	seen := make(map[string]db.Tuple)
	for _, a := range NaiveEval(q, d) {
		if t, ok := a.HeadTuple(q); ok {
			seen[t.Key()] = t
		}
	}
	return sortTuples(seen)
}
