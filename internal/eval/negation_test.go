package eval

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

func negSchema() *schema.Schema {
	return schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "Banned", Attrs: []string{"a"}},
	)
}

func TestNegationFiltersAnswers(t *testing.T) {
	d := db.New(negSchema())
	d.InsertFact(db.NewFact("R", "u", "1"))
	d.InsertFact(db.NewFact("R", "v", "2"))
	d.InsertFact(db.NewFact("Banned", "v"))
	q := cq.MustParse("(x) :- R(x, y), not Banned(x)")
	got := Result(q, d)
	if len(got) != 1 || got[0][0] != "u" {
		t.Errorf("Result = %v, want [(u)]", got)
	}
	if AnswerHolds(q, d, db.Tuple{"v"}) {
		t.Errorf("(v) should be blocked by Banned(v)")
	}
	if !AnswerHolds(q, d, db.Tuple{"u"}) {
		t.Errorf("(u) should hold")
	}
}

func TestBlockingFacts(t *testing.T) {
	d := db.New(negSchema())
	d.InsertFact(db.NewFact("R", "v", "2"))
	d.InsertFact(db.NewFact("Banned", "v"))
	q := cq.MustParse("(x) :- R(x, y), not Banned(x)")
	a := Assignment{"x": "v", "y": "2"}
	blockers := BlockingFacts(q, d, a)
	if len(blockers) != 1 || !blockers[0].Equal(db.NewFact("Banned", "v")) {
		t.Errorf("BlockingFacts = %v", blockers)
	}
	a2 := Assignment{"x": "u", "y": "1"}
	if got := BlockingFacts(q, d, a2); len(got) != 0 {
		t.Errorf("unblocked assignment has blockers: %v", got)
	}
}

func TestNegationAgainstNaive(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("(x) :- R(x, y), not Banned(x)"),
		cq.MustParse("(x, y) :- R(x, y), not R(y, x)"),
		cq.MustParse("(x) :- R(x, y), not Banned(x), x != y"),
	}
	rng := rand.New(rand.NewSource(21))
	vals := []string{"a", "b", "c"}
	for trial := 0; trial < 30; trial++ {
		d := db.New(negSchema())
		for i := 0; i < 12; i++ {
			d.InsertFact(db.NewFact("R", vals[rng.Intn(3)], vals[rng.Intn(3)]))
			if rng.Intn(2) == 0 {
				d.InsertFact(db.NewFact("Banned", vals[rng.Intn(3)]))
			}
		}
		for qi, q := range queries {
			fast := Eval(q, d)
			slow := NaiveEval(q, d)
			if len(fast) != len(slow) {
				t.Fatalf("trial %d query %d: %d vs %d assignments", trial, qi, len(fast), len(slow))
			}
			for i := range fast {
				if fast[i].Key() != slow[i].Key() {
					t.Fatalf("trial %d query %d: assignment %d differs", trial, qi, i)
				}
			}
		}
	}
}

func TestDoubleNegationStructure(t *testing.T) {
	// Two negated atoms: both must be absent.
	d := db.New(negSchema())
	d.InsertFact(db.NewFact("R", "a", "b"))
	d.InsertFact(db.NewFact("R", "b", "a"))
	q := cq.MustParse("(x, y) :- R(x, y), not Banned(x), not Banned(y)")
	if got := Result(q, d); len(got) != 2 {
		t.Fatalf("Result = %v, want both pairs", got)
	}
	d.InsertFact(db.NewFact("Banned", "a"))
	if got := Result(q, d); len(got) != 0 {
		t.Errorf("Result = %v, want empty (a banned on either side)", got)
	}
}
