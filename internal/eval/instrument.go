package eval

import (
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
)

// Metric names the evaluator records under when instrumented.
const (
	// MetricResultSeconds is the latency of Result (full query evaluation).
	MetricResultSeconds = "eval.result.seconds"
	// MetricResultUnionSeconds is the latency of ResultUnion (UCQ
	// evaluation); without it UCQ workloads would be invisible at the
	// metrics endpoint, since only the per-disjunct Result timers fire.
	MetricResultUnionSeconds = "eval.result_union.seconds"
	// MetricAnswerHoldsUnionSeconds is the latency of AnswerHoldsUnion (UCQ
	// answer membership).
	MetricAnswerHoldsUnionSeconds = "eval.answer_holds_union.seconds"
	// MetricWitnessSeconds is the latency of Witnesses (witness enumeration
	// for one answer — the question-selection hot path of Algorithm 1).
	MetricWitnessSeconds = "eval.witnesses.seconds"
	// MetricWitnessSets is the distribution of witness-set counts per answer.
	MetricWitnessSets = "eval.witnesses.sets"
	// MetricWitnessTuples is the distribution of distinct witness tuples per
	// answer (the naive question upper bound of Figure 3a).
	MetricWitnessTuples = "eval.witnesses.tuples"
	// MetricCacheHits / MetricCacheMisses count lookups against the
	// generation-stamped evaluation cache.
	MetricCacheHits   = "eval.cache.hits"
	MetricCacheMisses = "eval.cache.misses"
	// MetricCacheInvalidations counts cache sections discarded because the
	// database moved to a new edit generation.
	MetricCacheInvalidations = "eval.cache.invalidations"
	// MetricCacheDBInvalidations counts whole stores dropped from the cache
	// via InvalidateDB (a cleaning job finished and released its sections).
	MetricCacheDBInvalidations = "eval.cache.db_invalidations"
	// MetricMaintainedHits / MetricMaintainedMisses count evaluation calls
	// served from (or declined by) a registered incremental-view maintainer
	// (see Maintainer and internal/view). Misses are counted only when a
	// maintainer is registered for the store, so the ratio measures
	// maintained-mode coverage.
	MetricMaintainedHits   = "eval.maintained.hits"
	MetricMaintainedMisses = "eval.maintained.misses"
	// MetricParallelRuns counts enumerations that ran on the partitioned
	// parallel path; MetricParallelWorkers is the distribution of worker
	// counts actually used.
	MetricParallelRuns    = "eval.parallel.runs"
	MetricParallelWorkers = "eval.parallel.workers"
)

// recorder holds the process recorder the evaluator reports into. The
// evaluator's API is pure functions, so instrumentation is a package-level
// hook; an atomic pointer keeps Instrument safe to call concurrently with
// running evaluations.
var recorder atomic.Pointer[obs.Recorder]

// Instrument directs evaluator metrics into r (nil disables). Typically
// called once at process start by the server or CLI.
func Instrument(r *obs.Recorder) { recorder.Store(r) }

// rec returns the active recorder; nil (recording disabled) is valid, every
// obs method is nil-safe.
func rec() *obs.Recorder { return recorder.Load() }

// observeWitnesses reports one Witnesses enumeration: latency, number of
// witness sets, and number of distinct witness tuples.
func observeWitnesses(start time.Time, sets [][]db.Fact) {
	r := rec()
	if r == nil {
		return
	}
	r.ObserveDuration(MetricWitnessSeconds, time.Since(start))
	r.Observe(MetricWitnessSets, float64(len(sets)))
	distinct := make(map[string]bool)
	for _, w := range sets {
		for _, f := range w {
			distinct[f.Key()] = true
		}
	}
	r.Observe(MetricWitnessTuples, float64(len(distinct)))
}
