package eval

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/schema"
)

func tuplesEqual(a, b []db.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestIntroQ1Result reproduces §1: Q1(D) = {(GER), (ESP)} and
// Q1(DG) = {(GER), (ITA)}.
func TestIntroQ1Result(t *testing.T) {
	d, dg := dataset.Figure1()
	q := dataset.IntroQ1()
	got := Result(q, d)
	want := []db.Tuple{{"ESP"}, {"GER"}}
	if !tuplesEqual(got, want) {
		t.Errorf("Q1(D) = %v, want %v", got, want)
	}
	gotG := Result(q, dg)
	wantG := []db.Tuple{{"GER"}, {"ITA"}}
	if !tuplesEqual(gotG, wantG) {
		t.Errorf("Q1(DG) = %v, want %v", gotG, wantG)
	}
}

// TestExample22Assignments reproduces Example 2.2: answer (GER) has exactly
// two assignments (d1/d2 swapped).
func TestExample22Assignments(t *testing.T) {
	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()
	asgs := AssignmentsFor(q, d, db.Tuple{"GER"})
	if len(asgs) != 2 {
		t.Fatalf("A((GER),Q1,D) has %d assignments, want 2", len(asgs))
	}
	for _, a := range asgs {
		if a["x"] != "GER" || a["y"] != "ARG" || a["z"] != "ARG" {
			t.Errorf("assignment %v does not map x,y,z as in Example 2.2", a)
		}
		if a["d1"] == a["d2"] {
			t.Errorf("assignment %v violates d1 != d2", a)
		}
	}
	if asgs[0]["d1"] != asgs[1]["d2"] || asgs[0]["d2"] != asgs[1]["d1"] {
		t.Errorf("the two assignments should swap d1 and d2: %v", asgs)
	}
}

// TestExample46Witnesses reproduces Example 4.6: the wrong answer (ESP) is
// supported by exactly six witnesses, each containing Teams(ESP, EU).
func TestExample46Witnesses(t *testing.T) {
	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()
	ws := Witnesses(q, d, db.Tuple{"ESP"})
	if len(ws) != 6 {
		t.Fatalf("witnesses for (ESP) = %d, want 6", len(ws))
	}
	team := db.NewFact("Teams", "ESP", "EU")
	for _, w := range ws {
		if len(w) != 3 {
			t.Errorf("witness %v has %d facts, want 3 (two games + team)", w, len(w))
		}
		found := false
		for _, f := range w {
			if f.Equal(team) {
				found = true
			}
		}
		if !found {
			t.Errorf("witness %v misses Teams(ESP, EU)", w)
		}
	}
}

// TestExample54Subqueries reproduces Example 5.4: the Players+Goals+Games
// subquery of Q2|Pirlo has exactly one valid assignment; Teams(y, EU) has 3.
func TestExample54Subqueries(t *testing.T) {
	d, _ := dataset.Figure1()
	q := dataset.IntroQ2()
	qt, err := q.Embed(db.Tuple{"Andrea Pirlo"})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	qPrime := cq.SubqueryOf(qt, []int{0, 1, 2}) // Players, Goals, Games
	qDouble := cq.SubqueryOf(qt, []int{3})      // Teams(y, EU)
	asgs := Eval(qPrime, d)
	if len(asgs) != 1 {
		t.Fatalf("A(Q',D) = %d assignments, want 1", len(asgs))
	}
	a := asgs[0]
	if a["y"] != "ITA" || a["z"] != "1979" || a["d"] != "09.07.06" || a["v"] != "FRA" || a["u"] != "5:3" {
		t.Errorf("α1 = %v, want the Example 5.4 bindings", a)
	}
	asgs2 := Eval(qDouble, d)
	if len(asgs2) != 3 {
		t.Fatalf("A(Q'',D) = %d assignments, want 3 (GER, ESP, BRA)", len(asgs2))
	}
	// α1 is total for Q2|t.
	if !a.TotalFor(qt) {
		t.Errorf("α1 should be total for Q2|t; vars=%v a=%v", qt.Vars(), a)
	}
	// The Q'' assignments are partial and non-satisfiable w.r.t. D... except
	// they bind y only; satisfiability w.r.t. D means extension to a valid
	// total assignment. y=ITA works in neither D (no Teams(ITA,EU) in D), and
	// y=GER/ESP/BRA have no Pirlo tuples, so none are satisfiable... but
	// α(y=ITA) is not among them. Verify none of the three extends.
	for _, p := range asgs2 {
		if Satisfiable(qt, d, p) {
			// y -> GER/ESP/BRA cannot extend: Players(Pirlo, y, ...) absent.
			t.Errorf("partial %v unexpectedly satisfiable w.r.t. D", p)
		}
	}
}

// TestExample22NonSatisfiable reproduces Example 2.2's β: {x -> ITA, y -> FRA}
// is non-satisfiable w.r.t. D.
func TestExample22NonSatisfiable(t *testing.T) {
	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()
	if Satisfiable(q, d, Assignment{"x": "ITA", "y": "FRA"}) {
		t.Errorf("β = {x->ITA, y->FRA} should be non-satisfiable w.r.t. D")
	}
	if !Satisfiable(q, d, Assignment{"x": "GER"}) {
		t.Errorf("{x->GER} should be satisfiable w.r.t. D")
	}
}

func TestAnswerHolds(t *testing.T) {
	d, dg := dataset.Figure1()
	q := dataset.IntroQ1()
	if !AnswerHolds(q, d, db.Tuple{"ESP"}) {
		t.Errorf("(ESP) should hold in Q1(D)")
	}
	if AnswerHolds(q, dg, db.Tuple{"ESP"}) {
		t.Errorf("(ESP) should not hold in Q1(DG)")
	}
	if AnswerHolds(q, d, db.Tuple{"ITA"}) {
		t.Errorf("(ITA) should not hold in Q1(D)")
	}
	if !AnswerHolds(q, dg, db.Tuple{"ITA"}) {
		t.Errorf("(ITA) should hold in Q1(DG)")
	}
	if AnswerHolds(q, d, db.Tuple{"bad", "arity"}) {
		t.Errorf("arity-mismatched answer should not hold")
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	s := schema.New(schema.Relation{Name: "E", Attrs: []string{"src", "dst"}})
	d := db.New(s)
	d.InsertFact(db.NewFact("E", "a", "a"))
	d.InsertFact(db.NewFact("E", "a", "b"))
	q := cq.MustParse("(x) :- E(x, x)")
	got := Result(q, d)
	if len(got) != 1 || got[0][0] != "a" {
		t.Errorf("Result = %v, want [(a)] (self-loop only)", got)
	}
}

func TestConstantsInAtoms(t *testing.T) {
	d, _ := dataset.Figure1()
	q := cq.MustParse("(x) :- Games(d, x, ARG, Final, u)")
	got := Result(q, d)
	if len(got) != 1 || got[0][0] != "GER" {
		t.Errorf("Result = %v, want [(GER)]", got)
	}
}

func TestIneqVarConst(t *testing.T) {
	d, _ := dataset.Figure1()
	q := cq.MustParse("(x) :- Teams(x, c), c != EU")
	got := Result(q, d)
	if len(got) != 1 || got[0][0] != "NED" {
		t.Errorf("Result = %v, want [(NED)] (only NED maps to SA in D)", got)
	}
}

func TestEmptyResult(t *testing.T) {
	d, _ := dataset.Figure1()
	q := cq.MustParse("(x) :- Teams(x, AS)")
	if got := Result(q, d); len(got) != 0 {
		t.Errorf("Result = %v, want empty", got)
	}
	if Holds(q, d, Assignment{}) {
		t.Errorf("Holds should be false on empty result")
	}
}

func TestUnionEval(t *testing.T) {
	d, _ := dataset.Figure1()
	u := cq.MustParseUnion("(x) :- Teams(x, EU) ; (x) :- Teams(x, SA)")
	got := ResultUnion(u, d)
	if len(got) != 4 {
		t.Errorf("union result = %v, want 4 teams", got)
	}
	if !AnswerHoldsUnion(u, d, db.Tuple{"NED"}) {
		t.Errorf("(NED) should hold in the union")
	}
	if AnswerHoldsUnion(u, d, db.Tuple{"ITA"}) {
		t.Errorf("(ITA) should not hold in the union over D")
	}
}

// TestEvalAgainstNaive cross-checks the indexed evaluator against the naive
// reference on randomized databases and a battery of query shapes.
func TestEvalAgainstNaive(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
		schema.Relation{Name: "T", Attrs: []string{"c", "d", "e"}},
	)
	queries := []*cq.Query{
		cq.MustParse("(x, z) :- R(x, y), S(y, z)"),
		cq.MustParse("(x) :- R(x, y), S(y, z), x != z"),
		cq.MustParse("(x, w) :- R(x, y), S(y, z), T(z, w, v), w != x, v != C0"),
		cq.MustParse("(x) :- R(x, x)"),
		cq.MustParse("(y) :- R(C1, y)"),
		cq.MustParse("(x, y, z, w, v) :- R(x, y), S(y, z), T(z, w, v)"),
	}
	rng := rand.New(rand.NewSource(99))
	vals := []string{"C0", "C1", "C2", "C3", "C4"}
	for trial := 0; trial < 25; trial++ {
		d := db.New(s)
		for i := 0; i < 30; i++ {
			d.InsertFact(db.NewFact("R", vals[rng.Intn(5)], vals[rng.Intn(5)]))
			d.InsertFact(db.NewFact("S", vals[rng.Intn(5)], vals[rng.Intn(5)]))
			d.InsertFact(db.NewFact("T", vals[rng.Intn(5)], vals[rng.Intn(5)], vals[rng.Intn(5)]))
		}
		for qi, q := range queries {
			fast := Eval(q, d)
			slow := NaiveEval(q, d)
			if len(fast) != len(slow) {
				t.Fatalf("trial %d query %d: indexed %d assignments, naive %d", trial, qi, len(fast), len(slow))
			}
			for i := range fast {
				if fast[i].Key() != slow[i].Key() {
					t.Fatalf("trial %d query %d: assignment %d differs: %v vs %v", trial, qi, i, fast[i], slow[i])
				}
			}
			if !tuplesEqual(Result(q, d), NaiveResult(q, d)) {
				t.Fatalf("trial %d query %d: results differ", trial, qi)
			}
		}
	}
}

func TestHeadTupleAndPartialFromAnswer(t *testing.T) {
	q := cq.MustParse("(x, Final) :- Games(d, x, y, Final, u)")
	a := Assignment{"x": "GER"}
	tp, ok := a.HeadTuple(q)
	if !ok || tp[0] != "GER" || tp[1] != "Final" {
		t.Errorf("HeadTuple = %v, %v", tp, ok)
	}
	if _, ok := (Assignment{}).HeadTuple(q); ok {
		t.Errorf("HeadTuple with unbound head var should fail")
	}
	if _, ok := PartialFromAnswer(q, db.Tuple{"GER", "Semi"}); ok {
		t.Errorf("PartialFromAnswer conflicting with head const should fail")
	}
	p, ok := PartialFromAnswer(q, db.Tuple{"GER", "Final"})
	if !ok || p["x"] != "GER" {
		t.Errorf("PartialFromAnswer = %v, %v", p, ok)
	}
}

func TestWitnessDedupAcrossAtoms(t *testing.T) {
	// Both atoms can map to the same fact; the witness is a set.
	s := schema.New(schema.Relation{Name: "R", Attrs: []string{"a", "b"}})
	d := db.New(s)
	d.InsertFact(db.NewFact("R", "x", "x"))
	q := cq.MustParse("(a) :- R(a, b), R(b, a)")
	ws := Witnesses(q, d, db.Tuple{"x"})
	if len(ws) != 1 || len(ws[0]) != 1 {
		t.Errorf("witnesses = %v, want one singleton witness", ws)
	}
}

func TestAssignmentStringAndKey(t *testing.T) {
	a := Assignment{"y": "2", "x": "1"}
	if got, want := a.String(), "{x -> 1, y -> 2}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	b := Assignment{"x": "1", "y": "2"}
	if a.Key() != b.Key() {
		t.Errorf("Key not canonical")
	}
	c := Assignment{"x": "1", "y": "3"}
	if a.Key() == c.Key() {
		t.Errorf("distinct assignments share Key")
	}
}
