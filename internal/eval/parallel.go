package eval

import (
	"sync"

	"repro/internal/cq"
	"repro/internal/db"
)

// parallelMinScan is the smallest driving scan worth splitting: below this
// the goroutine setup dominates whatever join work the chunks carry.
const parallelMinScan = 8

// searchParallel enumerates all valid total assignments extending seed by
// partitioning the scan of the first (most selective) atom across workers.
// Each worker owns a clone of the seed and enumerates its chunk exactly as
// the serial searchRec would, yielding into its own accumulator via
// newYield(w); chunks are assigned in scan order so the merge the caller
// performs (worker 0's results first, then worker 1's, …) is deterministic
// for a given scan. It reports ok = false when the enumeration does not
// parallelize profitably — the caller must then run the serial search.
func searchParallel(q *cq.Query, d db.Reader, seed Assignment, workers int, newYield func(w int) func(Assignment) bool) (ok bool) {
	if workers <= 1 {
		return false
	}
	a := seed.Clone()
	if !validateSeed(q, d, a) {
		return true // seed contradicts the query: zero assignments, nothing to run
	}
	// First-atom choice, exactly as searchRec: the fewest-matches atom under
	// the seed's bindings drives the top-level loop.
	bestPos, bestCount := -1, -1
	var bestBindings []db.Binding
	for pos := range q.Atoms {
		atom := q.Atoms[pos]
		rel := d.Rel(atom.Rel)
		if rel == nil {
			return true // unknown relation: no matches at all
		}
		bindings := bindingsFor(atom, a)
		n := rel.MatchCount(bindings)
		if bestPos == -1 || n < bestCount {
			bestPos, bestCount, bestBindings = pos, n, bindings
		}
		if n == 0 {
			return true // an empty atom prunes the whole enumeration
		}
	}
	if bestPos == -1 {
		return false // no atoms (boolean edge case): serial handles it
	}
	atom := q.Atoms[bestPos]
	scan := d.Rel(atom.Rel).Scan(bestBindings)
	if len(scan) < parallelMinScan || len(scan) < workers {
		return false
	}
	if workers > len(scan) {
		workers = len(scan)
	}
	rest := make([]int, 0, len(q.Atoms)-1)
	for i := range q.Atoms {
		if i != bestPos {
			rest = append(rest, i)
		}
	}

	r := rec()
	r.Inc(MetricParallelRuns)
	r.Observe(MetricParallelWorkers, float64(workers))

	var wg sync.WaitGroup
	chunk := (len(scan) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(scan) {
			hi = len(scan)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, tuples []db.Tuple) {
			defer wg.Done()
			yield := newYield(w)
			wa := a.Clone()
			restW := append([]int(nil), rest...)
			for _, tuple := range tuples {
				bound, okBind := bind(wa, atom, tuple)
				if !okBind {
					continue
				}
				okIneq := true
				for _, e := range q.Ineqs {
					if !wa.IneqHolds(e) {
						okIneq = false
						break
					}
				}
				if okIneq && !searchRec(q, d, wa, restW, yield) {
					rollback(wa, bound)
					return
				}
				rollback(wa, bound)
			}
		}(w, scan[lo:hi])
	}
	wg.Wait()
	return true
}

// collect gathers all valid total assignments extending seed under cfg:
// serially via search, or via searchParallel with per-worker slices merged
// in worker order. Callers sort the result, so the two paths produce
// byte-identical output.
func collect(q *cq.Query, d db.Reader, seed Assignment, cfg config) []Assignment {
	if cfg.workers > 1 {
		parts := make([][]Assignment, cfg.workers)
		if searchParallel(q, d, seed, cfg.workers, func(w int) func(Assignment) bool {
			return func(a Assignment) bool {
				parts[w] = append(parts[w], a.Clone())
				return true
			}
		}) {
			var out []Assignment
			for _, p := range parts {
				out = append(out, p...)
			}
			return out
		}
	}
	var out []Assignment
	search(q, d, seed, func(a Assignment) bool {
		out = append(out, a.Clone())
		return true
	})
	return out
}

// collectResult gathers the distinct head tuples of all valid assignments
// extending the empty seed — the enumeration core of Result — serially or in
// parallel with per-worker dedup maps merged afterwards.
func collectResult(q *cq.Query, d db.Reader, cfg config) map[string]db.Tuple {
	if cfg.workers > 1 {
		parts := make([]map[string]db.Tuple, cfg.workers)
		if searchParallel(q, d, Assignment{}, cfg.workers, func(w int) func(Assignment) bool {
			seen := make(map[string]db.Tuple)
			parts[w] = seen
			return func(a Assignment) bool {
				if t, ok := a.HeadTuple(q); ok {
					seen[t.Key()] = t
				}
				return true
			}
		}) {
			seen := make(map[string]db.Tuple)
			for _, p := range parts {
				for k, t := range p {
					seen[k] = t
				}
			}
			return seen
		}
	}
	seen := make(map[string]db.Tuple)
	search(q, d, Assignment{}, func(a Assignment) bool {
		if t, ok := a.HeadTuple(q); ok {
			seen[t.Key()] = t
		}
		return true
	})
	return seen
}
