package eval

import (
	"sort"
	"time"

	"repro/internal/cq"
	"repro/internal/db"
)

// Eval returns all valid total assignments A(Q,D) in deterministic order.
func Eval(q *cq.Query, d *db.Database) []Assignment {
	var out []Assignment
	search(q, d, Assignment{}, func(a Assignment) bool {
		out = append(out, a.Clone())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Result returns Q(D): the distinct answer tuples α(head(Q)) over all valid
// assignments, in deterministic (lexicographic) order.
func Result(q *cq.Query, d *db.Database) []db.Tuple {
	if r := rec(); r != nil {
		defer r.Timer(MetricResultSeconds)()
	}
	seen := make(map[string]db.Tuple)
	search(q, d, Assignment{}, func(a Assignment) bool {
		t, ok := a.HeadTuple(q)
		if !ok {
			return true
		}
		seen[t.Key()] = t
		return true
	})
	return sortTuples(seen)
}

// ResultUnion returns the union of Result over the disjuncts of a UCQ.
func ResultUnion(u *cq.Union, d *db.Database) []db.Tuple {
	seen := make(map[string]db.Tuple)
	for _, q := range u.Disjuncts {
		for _, t := range Result(q, d) {
			seen[t.Key()] = t
		}
	}
	return sortTuples(seen)
}

// Extensions returns all valid total assignments extending the partial
// assignment seed, in deterministic order.
func Extensions(q *cq.Query, d *db.Database, seed Assignment) []Assignment {
	var out []Assignment
	search(q, d, seed, func(a Assignment) bool {
		out = append(out, a.Clone())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// AssignmentsFor returns A(t,Q,D): the valid assignments of Q w.r.t. D that
// yield answer t. It returns nil when t conflicts with the head shape.
func AssignmentsFor(q *cq.Query, d *db.Database, t db.Tuple) []Assignment {
	seed, ok := PartialFromAnswer(q, t)
	if !ok {
		return nil
	}
	var out []Assignment
	search(q, d, seed, func(a Assignment) bool {
		out = append(out, a.Clone())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Witnesses returns the witness sets for answer t: one set of facts per valid
// assignment in A(t,Q,D), deduplicated (distinct assignments can induce the
// same witness, e.g. by permuting symmetric atoms).
func Witnesses(q *cq.Query, d *db.Database, t db.Tuple) [][]db.Fact {
	start := time.Now()
	asgs := AssignmentsFor(q, d, t)
	seen := make(map[string]bool)
	var out [][]db.Fact
	for _, a := range asgs {
		w := a.Witness(q)
		k := witnessKey(w)
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	observeWitnesses(start, out)
	return out
}

func witnessKey(w []db.Fact) string {
	k := ""
	for _, f := range w {
		k += f.Key() + "\x1e"
	}
	return k
}

// Holds reports whether the boolean query (or the body of q under the given
// seed) has at least one valid extension w.r.t. D — i.e. whether the partial
// assignment is satisfiable (§2).
func Holds(q *cq.Query, d *db.Database, seed Assignment) bool {
	found := false
	search(q, d, seed, func(Assignment) bool {
		found = true
		return false // stop at first
	})
	return found
}

// Satisfiable reports whether the partial assignment α for Q is satisfiable
// w.r.t. D: some extension to a total assignment is valid (§2).
func Satisfiable(q *cq.Query, d *db.Database, partial Assignment) bool {
	return Holds(q, d, partial)
}

// AnswerHolds reports whether tuple t ∈ Q(D).
func AnswerHolds(q *cq.Query, d *db.Database, t db.Tuple) bool {
	seed, ok := PartialFromAnswer(q, t)
	if !ok {
		return false
	}
	return Holds(q, d, seed)
}

// AnswerHoldsUnion reports whether t is an answer of the union over D.
func AnswerHoldsUnion(u *cq.Union, d *db.Database, t db.Tuple) bool {
	for _, q := range u.Disjuncts {
		if AnswerHolds(q, d, t) {
			return true
		}
	}
	return false
}

// search enumerates all valid total assignments extending seed, invoking
// yield for each; yield returns false to stop the enumeration. It uses
// index-nested-loop joins with a greedy "fewest matching tuples first" atom
// order, re-planned at every step against the current bindings.
func search(q *cq.Query, d *db.Database, seed Assignment, yield func(Assignment) bool) {
	// Validate seeded inequalities and ground atoms up front.
	a := seed.Clone()
	for _, e := range q.Ineqs {
		if !a.IneqHolds(e) {
			return
		}
	}
	remaining := make([]int, 0, len(q.Atoms))
	for i := range q.Atoms {
		remaining = append(remaining, i)
	}
	searchRec(q, d, a, remaining, yield)
}

// searchRec extends a over the remaining atoms. Returns false if the caller
// should stop enumerating.
func searchRec(q *cq.Query, d *db.Database, a Assignment, remaining []int, yield func(Assignment) bool) bool {
	if len(remaining) == 0 {
		if !negsHold(q, d, a) {
			return true // blocked by a negated atom; keep enumerating
		}
		return yield(a)
	}
	// Pick the most selective remaining atom under current bindings.
	bestPos := -1
	bestCount := -1
	var bestBindings []db.Binding
	for pos, ai := range remaining {
		atom := q.Atoms[ai]
		rel := d.Relation(atom.Rel)
		if rel == nil {
			return true // unknown relation: no matches, prune this branch
		}
		bindings := bindingsFor(atom, a)
		n := rel.MatchCount(bindings)
		if bestPos == -1 || n < bestCount {
			bestPos, bestCount, bestBindings = pos, n, bindings
		}
		if n == 0 {
			break // cannot do better than an empty atom
		}
	}
	ai := remaining[bestPos]
	atom := q.Atoms[ai]
	rel := d.Relation(atom.Rel)
	rest := make([]int, 0, len(remaining)-1)
	rest = append(rest, remaining[:bestPos]...)
	rest = append(rest, remaining[bestPos+1:]...)

	for _, tuple := range rel.Scan(bestBindings) {
		bound, ok := bind(a, atom, tuple)
		if !ok {
			continue // bind rolled back already
		}
		okIneq := true
		for _, e := range q.Ineqs {
			if !a.IneqHolds(e) {
				okIneq = false
				break
			}
		}
		if okIneq && !searchRec(q, d, a, rest, yield) {
			rollback(a, bound)
			return false
		}
		rollback(a, bound)
	}
	return true
}

// negsHold checks the query's negated atoms under a total assignment: none
// may resolve to a fact present in D. Unbound variables in a negated atom
// (possible only for unsafe queries) make the check vacuously true for that
// atom.
func negsHold(q *cq.Query, d *db.Database, a Assignment) bool {
	for _, atom := range q.Negs {
		f, ok := a.AtomFact(atom)
		if !ok {
			continue
		}
		if d.Has(f) {
			return false
		}
	}
	return true
}

// BlockingFacts returns the facts of D that ground the query's negated atoms
// under the assignment — the tuples whose presence blocks the assignment from
// being valid. Used by the cleaner to repair answers of queries with
// negation.
func BlockingFacts(q *cq.Query, d *db.Database, a Assignment) []db.Fact {
	var out []db.Fact
	for _, atom := range q.Negs {
		f, ok := a.AtomFact(atom)
		if !ok {
			continue
		}
		if d.Has(f) {
			out = append(out, f)
		}
	}
	return out
}

// bindingsFor computes the index bindings an atom imposes given current
// variable bindings and its constants. Repeated variables are checked during
// extend; only the first occurrence produces a binding here (subsequent ones
// are equal-by-construction when bound).
func bindingsFor(atom cq.Atom, a Assignment) []db.Binding {
	var out []db.Binding
	for col, t := range atom.Args {
		if v, ok := a.Resolve(t); ok {
			out = append(out, db.Binding{Col: col, Value: v})
		}
	}
	return out
}

// bind unifies the atom with the tuple, mutating a in place. On success it
// returns the names of the variables it newly bound (to be rolled back by the
// caller after recursion); on conflict it rolls back itself and reports
// ok = false.
func bind(a Assignment, atom cq.Atom, tuple db.Tuple) (bound []string, ok bool) {
	for col, t := range atom.Args {
		if !t.IsVar {
			if t.Name != tuple[col] {
				rollback(a, bound)
				return nil, false
			}
			continue
		}
		if v, exists := a[t.Name]; exists {
			if v != tuple[col] {
				rollback(a, bound)
				return nil, false
			}
			continue
		}
		a[t.Name] = tuple[col]
		bound = append(bound, t.Name)
	}
	return bound, true
}

func rollback(a Assignment, bound []string) {
	for _, v := range bound {
		delete(a, v)
	}
}
