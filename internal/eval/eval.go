package eval

import (
	"sort"
	"strings"
	"time"

	"repro/internal/cq"
	"repro/internal/db"
)

// Eval returns all valid total assignments A(Q,D) in deterministic order.
func Eval(q *cq.Query, d db.Reader, opts ...Option) []Assignment {
	out := collect(q, d, Assignment{}, resolve(opts))
	sortAssignments(out)
	return out
}

// Result returns Q(D): the distinct answer tuples α(head(Q)) over all valid
// assignments, in deterministic (lexicographic) order. Results are memoized
// per database generation, so re-evaluating an unchanged database is an O(1)
// lookup (plus a copy of the answer spine).
func Result(q *cq.Query, d db.Reader, opts ...Option) []db.Tuple {
	if r := rec(); r != nil {
		defer r.Timer(MetricResultSeconds)()
	}
	cfg := resolve(opts)
	var key string
	if !cfg.noCache {
		key = resultKey(fingerprint(q))
		if out, ok := lookupTuples(d, key); ok {
			return out
		}
		if out, ok := maintainedResult(d, q); ok {
			storeTuples(d, d.Generation(), key, out)
			return out
		}
	}
	gen := d.Generation()
	out := sortTuples(collectResult(q, d, cfg))
	if !cfg.noCache {
		storeTuples(d, gen, key, out)
	}
	return out
}

// ResultUnion returns the union of Result over the disjuncts of a UCQ.
func ResultUnion(u *cq.Union, d db.Reader, opts ...Option) []db.Tuple {
	if r := rec(); r != nil {
		defer r.Timer(MetricResultUnionSeconds)()
	}
	cfg := resolve(opts)
	var key string
	if !cfg.noCache {
		key = unionResultKey(unionFingerprint(u))
		if out, ok := lookupTuples(d, key); ok {
			return out
		}
	}
	gen := d.Generation()
	seen := make(map[string]db.Tuple)
	for _, q := range u.Disjuncts {
		for _, t := range Result(q, d, opts...) {
			seen[t.Key()] = t
		}
	}
	out := sortTuples(seen)
	if !cfg.noCache {
		storeTuples(d, gen, key, out)
	}
	return out
}

// Extensions returns all valid total assignments extending the partial
// assignment seed, in deterministic order.
func Extensions(q *cq.Query, d db.Reader, seed Assignment, opts ...Option) []Assignment {
	out := collect(q, d, seed, resolve(opts))
	sortAssignments(out)
	return out
}

// AssignmentsFor returns A(t,Q,D): the valid assignments of Q w.r.t. D that
// yield answer t. It returns nil when t conflicts with the head shape.
func AssignmentsFor(q *cq.Query, d db.Reader, t db.Tuple, opts ...Option) []Assignment {
	seed, ok := PartialFromAnswer(q, t)
	if !ok {
		return nil
	}
	out := collect(q, d, seed, resolve(opts))
	sortAssignments(out)
	return out
}

// Witnesses returns the witness sets for answer t: one set of facts per valid
// assignment in A(t,Q,D), deduplicated (distinct assignments can induce the
// same witness, e.g. by permuting symmetric atoms) and sorted canonically by
// witness key, so the maintained (IVM) path and cold enumeration produce
// byte-identical output. Witness sets are memoized per database generation —
// the question-selection loop of Algorithm 1 re-enumerates the same answer's
// witnesses between crowd questions.
func Witnesses(q *cq.Query, d db.Reader, t db.Tuple, opts ...Option) [][]db.Fact {
	start := time.Now()
	cfg := resolve(opts)
	var key string
	if !cfg.noCache {
		key = witnessCacheKey(fingerprint(q), t.Key())
		if out, ok := lookupWitnesses(d, key); ok {
			observeWitnesses(start, out)
			return out
		}
		if out, ok := maintainedWitnesses(d, q, t); ok {
			storeWitnesses(d, d.Generation(), key, out)
			observeWitnesses(start, out)
			return out
		}
	}
	gen := d.Generation()
	asgs := AssignmentsFor(q, d, t, opts...)
	seen := make(map[string]bool)
	var out [][]db.Fact
	var keys []string
	for _, a := range asgs {
		w := a.Witness(q)
		k := witnessKey(w)
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
			keys = append(keys, k)
		}
	}
	sortWitnessSets(out, keys)
	if !cfg.noCache {
		storeWitnesses(d, gen, key, out)
	}
	observeWitnesses(start, out)
	return out
}

// sortWitnessSets orders witness sets by their precomputed canonical keys.
func sortWitnessSets(out [][]db.Fact, keys []string) {
	if len(out) < 2 {
		return
	}
	sort.Sort(&witnessesByKey{sets: out, keys: keys})
}

type witnessesByKey struct {
	sets [][]db.Fact
	keys []string
}

func (s *witnessesByKey) Len() int           { return len(s.sets) }
func (s *witnessesByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *witnessesByKey) Swap(i, j int) {
	s.sets[i], s.sets[j] = s.sets[j], s.sets[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// WitnessSetKey returns the canonical identity of one witness set — the
// dedup and sort key Witnesses uses. The view engine keys its maintained
// witness counts by it so the incremental path reproduces Witnesses' output
// exactly.
func WitnessSetKey(w []db.Fact) string { return witnessKey(w) }

// witnessKey builds the dedup key of one witness set with a single
// allocation (the sets are sorted, so concatenated fact keys are canonical).
func witnessKey(w []db.Fact) string {
	var b strings.Builder
	n := 0
	for _, f := range w {
		n += len(f.Rel) + len(f.Args)*8 + 2
	}
	b.Grow(n)
	for _, f := range w {
		b.WriteString(f.Key())
		b.WriteByte('\x1e')
	}
	return b.String()
}

// Holds reports whether the boolean query (or the body of q under the given
// seed) has at least one valid extension w.r.t. D — i.e. whether the partial
// assignment is satisfiable (§2). Outcomes are memoized per database
// generation and seed.
func Holds(q *cq.Query, d db.Reader, seed Assignment, opts ...Option) bool {
	cfg := resolve(opts)
	var key string
	if !cfg.noCache {
		key = holdsKey(fingerprint(q), seed.Key())
		if v, ok := lookupHolds(d, key); ok {
			return v
		}
		if v, ok := maintainedHolds(d, q, seed); ok {
			storeHolds(d, d.Generation(), key, v)
			return v
		}
	}
	gen := d.Generation()
	found := false
	search(q, d, seed, func(Assignment) bool {
		found = true
		return false // stop at first
	})
	if !cfg.noCache {
		storeHolds(d, gen, key, found)
	}
	return found
}

// Satisfiable reports whether the partial assignment α for Q is satisfiable
// w.r.t. D: some extension to a total assignment is valid (§2).
func Satisfiable(q *cq.Query, d db.Reader, partial Assignment, opts ...Option) bool {
	return Holds(q, d, partial, opts...)
}

// AnswerHolds reports whether tuple t ∈ Q(D).
func AnswerHolds(q *cq.Query, d db.Reader, t db.Tuple, opts ...Option) bool {
	seed, ok := PartialFromAnswer(q, t)
	if !ok {
		return false
	}
	if !resolve(opts).noCache {
		if v, ok := maintainedAnswerHolds(d, q, t); ok {
			return v
		}
	}
	return Holds(q, d, seed, opts...)
}

// AnswerHoldsUnion reports whether t is an answer of the union over D.
func AnswerHoldsUnion(u *cq.Union, d db.Reader, t db.Tuple, opts ...Option) bool {
	if r := rec(); r != nil {
		defer r.Timer(MetricAnswerHoldsUnionSeconds)()
	}
	for _, q := range u.Disjuncts {
		if AnswerHolds(q, d, t, opts...) {
			return true
		}
	}
	return false
}

// sortAssignments orders assignments by their canonical key. Keys are
// precomputed once per assignment — Assignment.Key sorts and concatenates the
// variable bindings, so rebuilding it inside the comparator would cost
// O(n log n) key constructions per sort.
func sortAssignments(out []Assignment) {
	if len(out) < 2 {
		return
	}
	keys := make([]string, len(out))
	for i, a := range out {
		keys[i] = a.Key()
	}
	sort.Sort(&assignmentsByKey{asgs: out, keys: keys})
}

type assignmentsByKey struct {
	asgs []Assignment
	keys []string
}

func (s *assignmentsByKey) Len() int           { return len(s.asgs) }
func (s *assignmentsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *assignmentsByKey) Swap(i, j int) {
	s.asgs[i], s.asgs[j] = s.asgs[j], s.asgs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// validateSeed checks the seeded inequalities and ground atoms of q under a:
// an inequality already violated, or an atom fully grounded by the seed whose
// fact is absent from D, prunes the whole enumeration. It reports false when
// the seed is contradictory.
func validateSeed(q *cq.Query, d db.Reader, a Assignment) bool {
	for _, e := range q.Ineqs {
		if !a.IneqHolds(e) {
			return false
		}
	}
	for _, atom := range q.Atoms {
		f, ok := a.AtomFact(atom)
		if !ok {
			continue // not ground under the seed; recursion binds it
		}
		if !d.Has(f) {
			return false
		}
	}
	return true
}

// search enumerates all valid total assignments extending seed, invoking
// yield for each; yield returns false to stop the enumeration. It uses
// index-nested-loop joins with a greedy "fewest matching tuples first" atom
// order, re-planned at every step against the current bindings.
func search(q *cq.Query, d db.Reader, seed Assignment, yield func(Assignment) bool) {
	// Validate seeded inequalities and ground atoms up front.
	a := seed.Clone()
	if !validateSeed(q, d, a) {
		return
	}
	remaining := make([]int, 0, len(q.Atoms))
	for i := range q.Atoms {
		remaining = append(remaining, i)
	}
	searchRec(q, d, a, remaining, yield)
}

// searchRec extends a over the remaining atoms. Returns false if the caller
// should stop enumerating.
func searchRec(q *cq.Query, d db.Reader, a Assignment, remaining []int, yield func(Assignment) bool) bool {
	if len(remaining) == 0 {
		if !negsHold(q, d, a) {
			return true // blocked by a negated atom; keep enumerating
		}
		return yield(a)
	}
	// Pick the most selective remaining atom under current bindings.
	bestPos := -1
	bestCount := -1
	var bestBindings []db.Binding
	for pos, ai := range remaining {
		atom := q.Atoms[ai]
		rel := d.Rel(atom.Rel)
		if rel == nil {
			return true // unknown relation: no matches, prune this branch
		}
		bindings := bindingsFor(atom, a)
		n := rel.MatchCount(bindings)
		if bestPos == -1 || n < bestCount {
			bestPos, bestCount, bestBindings = pos, n, bindings
		}
		if n == 0 {
			break // cannot do better than an empty atom
		}
	}
	ai := remaining[bestPos]
	atom := q.Atoms[ai]
	rel := d.Rel(atom.Rel)
	rest := make([]int, 0, len(remaining)-1)
	rest = append(rest, remaining[:bestPos]...)
	rest = append(rest, remaining[bestPos+1:]...)

	for _, tuple := range rel.Scan(bestBindings) {
		bound, ok := bind(a, atom, tuple)
		if !ok {
			continue // bind rolled back already
		}
		okIneq := true
		for _, e := range q.Ineqs {
			if !a.IneqHolds(e) {
				okIneq = false
				break
			}
		}
		if okIneq && !searchRec(q, d, a, rest, yield) {
			rollback(a, bound)
			return false
		}
		rollback(a, bound)
	}
	return true
}

// negsHold checks the query's negated atoms under a total assignment: none
// may resolve to a fact present in D. Unbound variables in a negated atom
// (possible only for unsafe queries) make the check vacuously true for that
// atom.
func negsHold(q *cq.Query, d db.Reader, a Assignment) bool {
	for _, atom := range q.Negs {
		f, ok := a.AtomFact(atom)
		if !ok {
			continue
		}
		if d.Has(f) {
			return false
		}
	}
	return true
}

// BlockingFacts returns the facts of D that ground the query's negated atoms
// under the assignment — the tuples whose presence blocks the assignment from
// being valid. Used by the cleaner to repair answers of queries with
// negation.
func BlockingFacts(q *cq.Query, d db.Reader, a Assignment) []db.Fact {
	var out []db.Fact
	for _, atom := range q.Negs {
		f, ok := a.AtomFact(atom)
		if !ok {
			continue
		}
		if d.Has(f) {
			out = append(out, f)
		}
	}
	return out
}

// bindingsFor computes the index bindings an atom imposes given current
// variable bindings and its constants. Repeated variables are checked during
// extend; only the first occurrence produces a binding here (subsequent ones
// are equal-by-construction when bound).
func bindingsFor(atom cq.Atom, a Assignment) []db.Binding {
	var out []db.Binding
	for col, t := range atom.Args {
		if v, ok := a.Resolve(t); ok {
			out = append(out, db.Binding{Col: col, Value: v})
		}
	}
	return out
}

// bind unifies the atom with the tuple, mutating a in place. On success it
// returns the names of the variables it newly bound (to be rolled back by the
// caller after recursion); on conflict it rolls back itself and reports
// ok = false.
func bind(a Assignment, atom cq.Atom, tuple db.Tuple) (bound []string, ok bool) {
	for col, t := range atom.Args {
		if !t.IsVar {
			if t.Name != tuple[col] {
				rollback(a, bound)
				return nil, false
			}
			continue
		}
		if v, exists := a[t.Name]; exists {
			if v != tuple[col] {
				rollback(a, bound)
				return nil, false
			}
			continue
		}
		a[t.Name] = tuple[col]
		bound = append(bound, t.Name)
	}
	return bound, true
}

func rollback(a Assignment, bound []string) {
	for _, v := range bound {
		delete(a, v)
	}
}
