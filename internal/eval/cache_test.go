package eval

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/schema"
)

// witnessesEqual compares two witness-set lists by their canonical keys.
func witnessesEqual(a, b [][]db.Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if witnessKey(a[i]) != witnessKey(b[i]) {
			return false
		}
	}
	return true
}

// TestCacheHitsAndInvalidation walks the cache through its life cycle on the
// paper's running example: first evaluation misses and fills, re-evaluation
// of the unchanged database hits, an edit bumps the generation so the next
// evaluation misses again (invalidating the stale section) and reflects the
// edit — never the cached pre-edit answer.
func TestCacheHitsAndInvalidation(t *testing.T) {
	r := obs.New()
	Instrument(r)
	defer Instrument(nil)

	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()

	first := Result(q, d)
	if r.Counter(MetricCacheHits) != 0 {
		t.Fatalf("cold evaluation hit the cache (%d hits)", r.Counter(MetricCacheHits))
	}
	misses := r.Counter(MetricCacheMisses)
	if misses == 0 {
		t.Fatal("cold evaluation recorded no cache miss")
	}

	second := Result(q, d)
	if !tuplesEqual(first, second) {
		t.Fatalf("warm result %v differs from cold %v", second, first)
	}
	if r.Counter(MetricCacheHits) != 1 {
		t.Fatalf("warm evaluation: %d hits, want 1", r.Counter(MetricCacheHits))
	}

	// Edit: delete one of Germany's two final wins. Q1 asks for European
	// teams with final wins on two distinct dates, so (GER) must drop out —
	// serving the cached pre-edit answer would be a correctness bug, not a
	// slowdown.
	del := db.NewFact("Games", "08.07.90", "GER", "ARG", "Final", "1:0")
	if ch, err := d.DeleteFact(del); err != nil || !ch {
		t.Fatalf("DeleteFact = %v, %v", ch, err)
	}
	third := Result(q, d)
	for _, tp := range third {
		if tp[0] == "GER" {
			t.Fatalf("stale cache served: (GER) still in Q1(D) after its witness was deleted: %v", third)
		}
	}
	if r.Counter(MetricCacheMisses) <= misses {
		t.Error("post-edit evaluation did not miss the cache")
	}
	if r.Counter(MetricCacheInvalidations) == 0 {
		t.Error("stale section was never counted as invalidated")
	}

	// Re-inserting restores the original answer (new generation, fresh entry).
	if ch, err := d.InsertFact(del); err != nil || !ch {
		t.Fatalf("InsertFact = %v, %v", ch, err)
	}
	if !tuplesEqual(Result(q, d), first) {
		t.Error("result after undoing the edit differs from the original")
	}
}

// TestCacheClonesIndependent: a clone never sees the original's cache entries
// and vice versa — they have distinct identities even though they start with
// identical contents.
func TestCacheClonesIndependent(t *testing.T) {
	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()
	want := Result(q, d) // cached for d

	c := d.Clone()
	if _, err := c.DeleteFact(db.NewFact("Games", "08.07.90", "GER", "ARG", "Final", "1:0")); err != nil {
		t.Fatal(err)
	}
	for _, tp := range Result(q, c) {
		if tp[0] == "GER" {
			t.Fatalf("clone served the original's cached answer: %v", Result(q, c))
		}
	}
	if !tuplesEqual(Result(q, d), want) {
		t.Error("original's answer changed after editing the clone")
	}
}

// TestWitnessesAndHoldsCached: Witnesses and Holds are memoized per
// generation and invalidated by edits, with cached reads identical to
// recomputation.
func TestWitnessesAndHoldsCached(t *testing.T) {
	r := obs.New()
	Instrument(r)
	defer Instrument(nil)

	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()
	ger := db.Tuple{"GER"}

	cold := Witnesses(q, d, ger)
	hits := r.Counter(MetricCacheHits)
	warm := Witnesses(q, d, ger)
	if !witnessesEqual(cold, warm) {
		t.Fatalf("cached witnesses differ: %v vs %v", warm, cold)
	}
	if r.Counter(MetricCacheHits) <= hits {
		t.Error("second Witnesses call did not hit the cache")
	}

	if !AnswerHolds(q, d, ger) {
		t.Fatal("(GER) should hold")
	}
	hits = r.Counter(MetricCacheHits)
	if !AnswerHolds(q, d, ger) {
		t.Fatal("(GER) should still hold")
	}
	if r.Counter(MetricCacheHits) <= hits {
		t.Error("second AnswerHolds call did not hit the cache")
	}

	// Delete every (GER) witness tuple: the memoized Holds must flip.
	for _, w := range cold {
		for _, f := range w {
			if _, err := d.DeleteFact(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	if AnswerHolds(q, d, ger) {
		t.Error("(GER) still holds after all its witnesses were deleted (stale Holds cache)")
	}
	if len(Witnesses(q, d, ger)) != 0 {
		t.Error("witness sets survived the deletion of every witness fact")
	}
}

// TestSetCacheDisables: with the cache off nothing is looked up or stored;
// re-enabling starts from an empty cache.
func TestSetCacheDisables(t *testing.T) {
	SetCache(false)
	defer SetCache(true)

	r := obs.New()
	Instrument(r)
	defer Instrument(nil)

	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()
	a := Result(q, d)
	b := Result(q, d)
	if !tuplesEqual(a, b) {
		t.Fatalf("results differ with cache disabled: %v vs %v", a, b)
	}
	if h := r.Counter(MetricCacheHits); h != 0 {
		t.Errorf("cache disabled but recorded %d hits", h)
	}
	if m := r.Counter(MetricCacheMisses); m != 0 {
		t.Errorf("cache disabled but recorded %d misses (lookups should be skipped entirely)", m)
	}
}

// TestCacheRandomizedInterleavings is the soundness property of the tentpole:
// under randomized interleavings of edits and queries, cached evaluation is
// indistinguishable from the naive reference evaluator run from scratch at
// every step — Result, Witnesses and AnswerHolds never serve a stale
// generation.
func TestCacheRandomizedInterleavings(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
	consts := []string{"C0", "C1", "C2"}
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 40; trial++ {
		d := randDB(rng, s)
		var queries []*cq.Query
		for len(queries) < 4 {
			q := randQuery(rng)
			if err := q.Validate(s); err == nil && len(q.Head) > 0 {
				queries = append(queries, q)
			}
		}
		for step := 0; step < 30; step++ {
			// Randomly interleave edits with evaluations, reusing the same
			// constant pool so edits hit live cache entries.
			if rng.Intn(3) == 0 {
				rel := "R"
				if rng.Intn(2) == 0 {
					rel = "S"
				}
				f := db.NewFact(rel, consts[rng.Intn(3)], consts[rng.Intn(3)])
				var err error
				if rng.Intn(2) == 0 {
					_, err = d.InsertFact(f)
				} else {
					_, err = d.DeleteFact(f)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			q := queries[rng.Intn(len(queries))]
			got := Result(q, d)
			want := NaiveResult(q, d)
			if !tuplesEqual(got, want) {
				t.Fatalf("trial %d step %d (%s): cached Result %v, naive %v (gen %d)",
					trial, step, q, got, want, d.Generation())
			}
			if len(want) > 0 && rng.Intn(2) == 0 {
				tp := want[rng.Intn(len(want))]
				if !witnessesEqual(Witnesses(q, d, tp), Witnesses(q, d, tp, NoCache())) {
					t.Fatalf("trial %d step %d (%s): cached witnesses for %v diverge from recomputation",
						trial, step, q, tp)
				}
				if !AnswerHolds(q, d, tp) {
					t.Fatalf("trial %d step %d (%s): %v ∈ naive result but cached AnswerHolds false",
						trial, step, q, tp)
				}
			}
		}
	}
}

// TestWarmCacheSpeedup asserts the acceptance floor of the trajectory: warm
// re-evaluation of an unchanged database is at least 10x faster than cold
// evaluation. The measured margin on the full Soccer database is 2-3 orders
// of magnitude (see BENCH_eval.json), so 10x leaves generous headroom for
// noisy CI machines.
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	d := dataset.Soccer(dataset.SoccerOpts{Tournaments: 6})
	q := dataset.SoccerQueries()[1] // Q2: the heaviest self-join workload

	timeMin := func(n int, f func()) time.Duration {
		best := time.Duration(-1)
		for i := 0; i < n; i++ {
			start := time.Now()
			f()
			if el := time.Since(start); best < 0 || el < best {
				best = el
			}
		}
		return best
	}

	cold := timeMin(5, func() { Result(q, d, NoCache()) })
	Result(q, d) // prime
	warm := timeMin(20, func() { Result(q, d) })
	if warm*10 > cold {
		t.Errorf("warm cache %v vs cold %v: speedup %.1fx, want >= 10x",
			warm, cold, float64(cold)/float64(warm))
	}
}
