package eval

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/schema"
)

// assignmentsEqual compares two assignment lists by canonical keys.
func assignmentsEqual(a, b []Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// TestParallelMatchesSerialSoccer: on the Fig3 workload queries, partitioned
// evaluation at any worker count returns byte-identical output to serial
// evaluation — Result, Eval, AssignmentsFor and Witnesses alike.
func TestParallelMatchesSerialSoccer(t *testing.T) {
	d := dataset.Soccer(dataset.SoccerOpts{Tournaments: 4})
	for qi, q := range dataset.SoccerQueries() {
		serialRes := Result(q, d, NoCache())
		serialAsgs := Eval(q, d, NoCache())
		for _, workers := range []int{2, 4, 8} {
			parRes := Result(q, d, NoCache(), Parallel(workers))
			if !tuplesEqual(parRes, serialRes) {
				t.Fatalf("Q%d workers=%d: parallel Result %v != serial %v", qi+1, workers, parRes, serialRes)
			}
			parAsgs := Eval(q, d, NoCache(), Parallel(workers))
			if !assignmentsEqual(parAsgs, serialAsgs) {
				t.Fatalf("Q%d workers=%d: parallel Eval diverges (%d vs %d assignments)",
					qi+1, workers, len(parAsgs), len(serialAsgs))
			}
		}
		if len(serialRes) > 0 {
			tp := serialRes[0]
			if !witnessesEqual(
				Witnesses(q, d, tp, NoCache(), Parallel(4)),
				Witnesses(q, d, tp, NoCache()),
			) {
				t.Fatalf("Q%d: parallel witnesses for %v diverge from serial", qi+1, tp)
			}
		}
	}
}

// TestParallelMatchesSerialRandomized: parity on randomized queries and
// databases large enough to clear the parallel fallback threshold.
func TestParallelMatchesSerialRandomized(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
	consts := []string{"C0", "C1", "C2", "C3", "C4", "C5"}
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 150; trial++ {
		q := randQuery(rng)
		if err := q.Validate(s); err != nil {
			continue
		}
		// Bigger instances than randDB builds, so top-level scans regularly
		// exceed parallelMinScan and the partitioned path actually runs.
		d := db.New(s)
		n := 30 + rng.Intn(60)
		for i := 0; i < n; i++ {
			rel := "R"
			if rng.Intn(2) == 0 {
				rel = "S"
			}
			d.InsertFact(db.NewFact(rel, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]))
		}
		serial := Eval(q, d, NoCache())
		par := Eval(q, d, NoCache(), Parallel(3))
		if !assignmentsEqual(par, serial) {
			t.Fatalf("trial %d (%s): parallel Eval diverges (%d vs %d assignments)",
				trial, q, len(par), len(serial))
		}
	}
}

// TestParallelFallbackTinyScan: below the minimum scan size the engine falls
// back to the serial path and stays correct.
func TestParallelFallbackTinyScan(t *testing.T) {
	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()
	want := Result(q, d, NoCache())
	got := Result(q, d, NoCache(), Parallel(8))
	if !tuplesEqual(got, want) {
		t.Fatalf("tiny-scan parallel Result %v != serial %v", got, want)
	}
}

// TestParallelRecordsMetrics: partitioned runs surface in the eval.parallel.*
// series, and the worker-count distribution reflects the requested width.
func TestParallelRecordsMetrics(t *testing.T) {
	r := obs.New()
	Instrument(r)
	defer Instrument(nil)

	d := dataset.Soccer(dataset.SoccerOpts{Tournaments: 4})
	q := dataset.SoccerQueries()[1] // Q2 scans Teams at the top level: well past parallelMinScan
	Result(q, d, NoCache(), Parallel(4))

	snap := r.Snapshot()
	if snap.Counters[MetricParallelRuns] == 0 {
		t.Fatal("no parallel run recorded; the partitioned path never ran")
	}
	if h := snap.Histograms[MetricParallelWorkers]; h.Count == 0 || h.Max > 4 {
		t.Errorf("worker distribution %+v, want >=1 observation with max <= 4", h)
	}
}

// TestParallelOptionResolution: Parallel(n<=0) selects GOMAXPROCS and worker
// counts below 2 take the serial path (no goroutines, no metrics).
func TestParallelOptionResolution(t *testing.T) {
	r := obs.New()
	Instrument(r)
	defer Instrument(nil)

	d := dataset.Soccer(dataset.SoccerOpts{Tournaments: 2})
	q := dataset.SoccerQueries()[0]
	want := Result(q, d, NoCache())
	if got := Result(q, d, NoCache(), Parallel(-1)); !tuplesEqual(got, want) {
		t.Fatalf("Parallel(-1) Result %v != serial %v", got, want)
	}
	if got := Result(q, d, NoCache(), Parallel(1)); !tuplesEqual(got, want) {
		t.Fatalf("Parallel(1) Result %v != serial %v", got, want)
	}
}

// TestParallelUnionAndExtensions: the option threads through the UCQ and
// seeded-enumeration entry points unchanged.
func TestParallelUnionAndExtensions(t *testing.T) {
	d, _ := dataset.Figure1()
	u := cq.MustParseUnion("(x) :- Teams(x, EU) ; (x) :- Teams(x, SA)")
	want := ResultUnion(u, d, NoCache())
	if got := ResultUnion(u, d, NoCache(), Parallel(4)); !tuplesEqual(got, want) {
		t.Fatalf("parallel ResultUnion %v != serial %v", got, want)
	}

	q := dataset.IntroQ1()
	seed := Assignment{"x": "GER"}
	wantExt := Extensions(q, d, seed, NoCache())
	if gotExt := Extensions(q, d, seed, NoCache(), Parallel(4)); !assignmentsEqual(gotExt, wantExt) {
		t.Fatalf("parallel Extensions diverge (%d vs %d)", len(gotExt), len(wantExt))
	}
}
