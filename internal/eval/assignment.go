// Package eval evaluates conjunctive queries with inequalities over database
// instances. It produces the paper's core objects (§2): valid assignments
// A(Q,D), per-answer assignments A(t,Q,D), witnesses α(body(Q)), and
// satisfiability of partial assignments. A naive reference evaluator is
// included and cross-checked against the indexed one in tests.
package eval

import (
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/db"
)

// Assignment maps variable names to constants. A total assignment binds
// every variable of the query; a partial one may not.
type Assignment map[string]string

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Resolve returns the constant a term denotes under the assignment and
// whether it is determined (constants always are; variables only if bound).
func (a Assignment) Resolve(t cq.Term) (string, bool) {
	if !t.IsVar {
		return t.Name, true
	}
	v, ok := a[t.Name]
	return v, ok
}

// TotalFor reports whether the assignment binds every variable of q.
func (a Assignment) TotalFor(q *cq.Query) bool {
	for _, v := range q.Vars() {
		if _, ok := a[v]; !ok {
			return false
		}
	}
	return true
}

// Key returns a canonical representation used for dedup and map keys.
func (a Assignment) Key() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('\x1e')
		}
		b.WriteString(k)
		b.WriteByte('\x1f')
		b.WriteString(a[k])
	}
	return b.String()
}

// String renders the assignment as {x -> a, y -> b} with sorted variables.
func (a Assignment) String() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString(" -> ")
		b.WriteString(a[k])
	}
	b.WriteByte('}')
	return b.String()
}

// HeadTuple returns α(head(Q)): the answer tuple induced by the assignment.
// Unbound head variables yield ok = false.
func (a Assignment) HeadTuple(q *cq.Query) (db.Tuple, bool) {
	out := make(db.Tuple, len(q.Head))
	for i, t := range q.Head {
		v, ok := a.Resolve(t)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// AtomFact returns α(R(ū)) as a fact; ok = false if some argument is an
// unbound variable.
func (a Assignment) AtomFact(atom cq.Atom) (db.Fact, bool) {
	args := make(db.Tuple, len(atom.Args))
	for i, t := range atom.Args {
		v, ok := a.Resolve(t)
		if !ok {
			return db.Fact{}, false
		}
		args[i] = v
	}
	return db.Fact{Rel: atom.Rel, Args: args}, true
}

// IneqHolds evaluates α(l ≠ r). If either side is unbound the inequality is
// not yet violated and holds vacuously (it will be re-checked when bound).
func (a Assignment) IneqHolds(e cq.Ineq) bool {
	l, lok := a.Resolve(e.Left)
	r, rok := a.Resolve(e.Right)
	if !lok || !rok {
		return true
	}
	return l != r
}

// Witness returns α(body(Q)) as a deduplicated, sorted set of facts — the
// paper's witness for α. All atoms must be fully bound; callers use it only
// with total (or total-on-atoms) assignments.
func (a Assignment) Witness(q *cq.Query) []db.Fact {
	seen := make(map[string]bool, len(q.Atoms))
	out := make([]db.Fact, 0, len(q.Atoms))
	for _, atom := range q.Atoms {
		f, ok := a.AtomFact(atom)
		if !ok {
			continue
		}
		k := f.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// PartialFromAnswer builds the partial assignment induced by an answer tuple
// t (the paper treats t itself as a partial assignment mapping head variables
// to t's constants). It fails if t conflicts with head constants or binds a
// repeated head variable inconsistently.
func PartialFromAnswer(q *cq.Query, t db.Tuple) (Assignment, bool) {
	if len(t) != len(q.Head) {
		return nil, false
	}
	a := make(Assignment)
	for i, h := range q.Head {
		if h.IsVar {
			if prev, ok := a[h.Name]; ok && prev != t[i] {
				return nil, false
			}
			a[h.Name] = t[i]
		} else if h.Name != t[i] {
			return nil, false
		}
	}
	return a, true
}
