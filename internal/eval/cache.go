package eval

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cq"
	"repro/internal/db"
)

// The evaluation cache memoizes Result, ResultUnion, Witnesses and Holds
// per database generation. QOCO's cleaning loop re-evaluates Q(D) and
// re-enumerates witnesses between crowd questions, and each oracle round
// changes at most a handful of facts — so across a run most evaluations hit
// an unchanged database and can be answered from the previous round's work.
// Entries are stamped with (db.ID, db.Generation): any InsertFact/DeleteFact
// bumps the generation and implicitly invalidates every entry of that
// database, so a stale result can never be served. The cache is process-wide
// and safe for concurrent readers; its correctness contract is the same as
// the Database's — edits must be serialized against reads by the caller.

// cacheMaxDBs bounds how many store instances the cache tracks at once;
// cacheMaxGens bounds the generations kept per store (snapshots can keep an
// older generation hot while edits land on the live store); cacheMaxEntries
// bounds the entries kept per store and generation. Exceeding any cap drops
// whole cache sections (never partial entries), which affects performance
// only, never correctness.
const (
	cacheMaxDBs     = 64
	cacheMaxGens    = 4
	cacheMaxEntries = 16384
)

// dbCache holds every memoized evaluation against one database at one
// generation. A generation bump discards the maps wholesale.
type dbCache struct {
	gen       uint64
	results   map[string][]db.Tuple  // result/union key -> Q(D)
	witnesses map[string][][]db.Fact // witness key -> witness sets
	holds     map[string]bool        // satisfiability key -> Holds
}

func (c *dbCache) size() int { return len(c.results) + len(c.witnesses) + len(c.holds) }

func newDBCache(gen uint64) *dbCache {
	return &dbCache{
		gen:       gen,
		results:   make(map[string][]db.Tuple),
		witnesses: make(map[string][][]db.Fact),
		holds:     make(map[string]bool),
	}
}

// evalCache sections are keyed by (store ID, generation). Keeping a few
// generations per store lets reads through a snapshot (frozen at an older
// generation) and reads of the live store share the cache without evicting
// each other.
var evalCache = struct {
	sync.Mutex
	dbs map[uint64]map[uint64]*dbCache // store ID -> generation -> section
}{dbs: make(map[uint64]map[uint64]*dbCache)}

// cacheDisabled turns the process-wide cache off when set (see SetCache).
var cacheDisabled atomic.Bool

// SetCache enables or disables the process-wide evaluation cache. It is on
// by default; disabling also drops every cached entry. Intended for
// benchmarks and ablations — production callers leave it on.
func SetCache(on bool) {
	cacheDisabled.Store(!on)
	evalCache.Lock()
	evalCache.dbs = make(map[uint64]map[uint64]*dbCache)
	evalCache.Unlock()
}

// InvalidateDB drops every cache section of the store with the given ID.
// The generation stamp already prevents stale reads; this hook exists so a
// finished job's sections are reclaimed immediately instead of lingering (up
// to cacheMaxGens generations per store) until cap-driven eviction. The
// cleaner calls it when a run finishes and the server calls it when a job
// reaches a terminal state. Idempotent and safe to call concurrently with
// evaluations.
func InvalidateDB(id uint64) {
	evalCache.Lock()
	_, ok := evalCache.dbs[id]
	if ok {
		delete(evalCache.dbs, id)
	}
	evalCache.Unlock()
	if ok {
		rec().Inc(MetricCacheDBInvalidations)
	}
}

// CacheStats is a point-in-time summary of one store's cache footprint,
// exposed so tests can assert that finished jobs do not leak sections.
type CacheStats struct {
	Sections int // cache sections (generations) held for the store
	Entries  int // memoized entries across those sections
}

// CacheStatsFor reports the cache footprint of the store with the given ID.
func CacheStatsFor(id uint64) CacheStats {
	evalCache.Lock()
	defer evalCache.Unlock()
	var s CacheStats
	for _, c := range evalCache.dbs[id] {
		s.Sections++
		s.Entries += c.size()
	}
	return s
}

// forDB returns the cache section for the store at the given generation,
// creating it if needed. Creating a section at a new generation while older
// ones exist counts as an invalidation (the store moved on); the oldest
// generation is evicted once the per-store cap is hit. Caller holds
// evalCache.Mutex.
func forDB(d db.Reader, gen uint64) *dbCache {
	gens := evalCache.dbs[d.ID()]
	if gens == nil {
		if len(evalCache.dbs) >= cacheMaxDBs {
			// Too many live stores: drop an arbitrary one to stay bounded.
			for id := range evalCache.dbs {
				delete(evalCache.dbs, id)
				break
			}
		}
		gens = make(map[uint64]*dbCache)
		evalCache.dbs[d.ID()] = gens
	}
	if c := gens[gen]; c != nil {
		return c
	}
	if len(gens) > 0 {
		rec().Inc(MetricCacheInvalidations)
		if len(gens) >= cacheMaxGens {
			oldest, first := uint64(0), true
			for g := range gens {
				if first || g < oldest {
					oldest, first = g, false
				}
			}
			delete(gens, oldest)
		}
	}
	c := newDBCache(gen)
	gens[gen] = c
	return c
}

// section returns the existing cache section for the reader's current
// generation, or nil. Caller holds evalCache.Mutex.
func section(d db.Reader) *dbCache {
	return evalCache.dbs[d.ID()][d.Generation()]
}

// fingerprint renders the query's canonical cache identity. Query.String is
// a parseable, deterministic rendering, so distinct queries cannot collide;
// its cost is proportional to the query size (a handful of atoms), not the
// database, keeping warm lookups O(|Q|).
func fingerprint(q *cq.Query) string { return q.String() }

// unionFingerprint is the canonical identity of a UCQ.
func unionFingerprint(u *cq.Union) string {
	var b strings.Builder
	for i, q := range u.Disjuncts {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(q.String())
	}
	return b.String()
}

// Cache key namespaces. Each class of memoized call prefixes its key so a
// boolean Holds can never alias a Result of the same query.
func resultKey(fp string) string           { return "r\x00" + fp }
func unionResultKey(fp string) string      { return "u\x00" + fp }
func witnessCacheKey(fp, tk string) string { return "w\x00" + fp + "\x00" + tk }
func holdsKey(fp, seed string) string      { return "h\x00" + fp + "\x00" + seed }

// lookupTuples consults the cache for a []db.Tuple entry. The returned slice
// is a fresh copy of the cached spine (tuples themselves are shared and
// treated as immutable, as everywhere in the engine).
func lookupTuples(d db.Reader, key string) ([]db.Tuple, bool) {
	if cacheDisabled.Load() {
		return nil, false
	}
	evalCache.Lock()
	defer evalCache.Unlock()
	c := section(d)
	if c == nil {
		rec().Inc(MetricCacheMisses)
		return nil, false
	}
	v, ok := c.results[key]
	if !ok {
		rec().Inc(MetricCacheMisses)
		return nil, false
	}
	rec().Inc(MetricCacheHits)
	return append([]db.Tuple(nil), v...), true
}

// storeTuples records a []db.Tuple entry computed at generation gen. The
// entry is dropped unless the database is still at gen (an edit that raced
// the evaluation — only possible for callers that broke the serialization
// contract — must not poison the cache).
func storeTuples(d db.Reader, gen uint64, key string, v []db.Tuple) {
	if cacheDisabled.Load() || d.Generation() != gen {
		return
	}
	evalCache.Lock()
	defer evalCache.Unlock()
	c := forDB(d, gen)
	if c.size() >= cacheMaxEntries {
		c = newDBCache(gen)
		evalCache.dbs[d.ID()][gen] = c
	}
	c.results[key] = append([]db.Tuple(nil), v...)
}

// lookupWitnesses / storeWitnesses do the same for witness-set entries.
func lookupWitnesses(d db.Reader, key string) ([][]db.Fact, bool) {
	if cacheDisabled.Load() {
		return nil, false
	}
	evalCache.Lock()
	defer evalCache.Unlock()
	c := section(d)
	if c == nil {
		rec().Inc(MetricCacheMisses)
		return nil, false
	}
	v, ok := c.witnesses[key]
	if !ok {
		rec().Inc(MetricCacheMisses)
		return nil, false
	}
	rec().Inc(MetricCacheHits)
	return append([][]db.Fact(nil), v...), true
}

func storeWitnesses(d db.Reader, gen uint64, key string, v [][]db.Fact) {
	if cacheDisabled.Load() || d.Generation() != gen {
		return
	}
	evalCache.Lock()
	defer evalCache.Unlock()
	c := forDB(d, gen)
	if c.size() >= cacheMaxEntries {
		c = newDBCache(gen)
		evalCache.dbs[d.ID()][gen] = c
	}
	c.witnesses[key] = append([][]db.Fact(nil), v...)
}

// lookupHolds / storeHolds memoize boolean satisfiability checks.
func lookupHolds(d db.Reader, key string) (bool, bool) {
	if cacheDisabled.Load() {
		return false, false
	}
	evalCache.Lock()
	defer evalCache.Unlock()
	c := section(d)
	if c == nil {
		rec().Inc(MetricCacheMisses)
		return false, false
	}
	v, ok := c.holds[key]
	if !ok {
		rec().Inc(MetricCacheMisses)
		return false, false
	}
	rec().Inc(MetricCacheHits)
	return v, true
}

func storeHolds(d db.Reader, gen uint64, key string, v bool) {
	if cacheDisabled.Load() || d.Generation() != gen {
		return
	}
	evalCache.Lock()
	defer evalCache.Unlock()
	c := forDB(d, gen)
	if c.size() >= cacheMaxEntries {
		c = newDBCache(gen)
		evalCache.dbs[d.ID()][gen] = c
	}
	c.holds[key] = v
}
