package eval

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// TestConcurrentEvalWithInterleavedEdits exercises the cache under the
// engine's concurrency contract: a writer applies edits while holding an
// RWMutex exclusively, and readers evaluate under the shared lock. Each read
// compares cached Result and Witnesses against from-scratch recomputation of
// the same locked snapshot — a cache entry served across a generation bump
// would show up as a mismatch. Run under -race this also checks the cache's
// internal locking.
func TestConcurrentEvalWithInterleavedEdits(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
	consts := []string{"C0", "C1", "C2"}
	seedRNG := rand.New(rand.NewSource(2718))
	d := randDB(seedRNG, s)
	var queries []*cq.Query
	for len(queries) < 6 {
		q := randQuery(seedRNG)
		if err := q.Validate(s); err == nil && len(q.Head) > 0 {
			queries = append(queries, q)
		}
	}

	var mu sync.RWMutex
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: serialized edits, one generation bump at a time
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 300; i++ {
			rel := "R"
			if rng.Intn(2) == 0 {
				rel = "S"
			}
			f := db.NewFact(rel, consts[rng.Intn(3)], consts[rng.Intn(3)])
			mu.Lock()
			if rng.Intn(2) == 0 {
				_, _ = d.InsertFact(f)
			} else {
				_, _ = d.DeleteFact(f)
			}
			mu.Unlock()
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := queries[rng.Intn(len(queries))]
				mu.RLock()
				got := Result(q, d)
				want := NaiveResult(q, d)
				var gotW, wantW [][]db.Fact
				if len(want) > 0 {
					tp := want[rng.Intn(len(want))]
					gotW = Witnesses(q, d, tp)
					wantW = Witnesses(q, d, tp, NoCache())
				}
				gen := d.Generation()
				mu.RUnlock()
				if !tuplesEqual(got, want) {
					t.Errorf("reader %d (%s, gen %d): cached Result %v, naive %v — stale generation served",
						w, q, gen, got, want)
					return
				}
				if !witnessesEqual(gotW, wantW) {
					t.Errorf("reader %d (%s, gen %d): cached witnesses diverge from recomputation", w, q, gen)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
