package eval

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// TestCloneEditNeverServesStaleCache: clones are edited concurrently with
// readers evaluating the (unchanged) origin. Each clone carries a fresh ID
// and restarts its generation, so no interleaving may ever serve the
// origin's cached result for a clone or vice versa. Run under -race this
// also exercises the cache's cross-database locking.
func TestCloneEditNeverServesStaleCache(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
	rng := rand.New(rand.NewSource(99))
	origin := randDB(rng, s)
	var queries []*cq.Query
	for len(queries) < 4 {
		q := randQuery(rng)
		if err := q.Validate(s); err == nil && len(q.Head) > 0 {
			queries = append(queries, q)
		}
	}
	originWant := make([][]db.Tuple, len(queries))
	for i, q := range queries {
		originWant[i] = NaiveResult(q, origin)
		Result(q, origin) // warm the origin's cache entries
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(seed int64) { // reader: origin must keep its answers
			defer wg.Done()
			for i := 0; i < 50; i++ {
				qi := int(seed+int64(i)) % len(queries)
				if got := Result(queries[qi], origin); !tuplesEqual(got, originWant[qi]) {
					t.Errorf("origin result drifted: %v vs %v", got, originWant[qi])
					return
				}
			}
		}(int64(w))
		go func(seed int64) { // writer: clone, edit, compare vs naive
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			consts := []string{"C0", "C1", "C2"}
			for i := 0; i < 20; i++ {
				c := origin.Clone()
				for j := 0; j < 5; j++ {
					rel := "R"
					if rng.Intn(2) == 0 {
						rel = "S"
					}
					f := db.NewFact(rel, consts[rng.Intn(3)], consts[rng.Intn(3)])
					if rng.Intn(2) == 0 {
						c.InsertFact(f)
					} else {
						c.DeleteFact(f)
					}
					q := queries[rng.Intn(len(queries))]
					if got, want := Result(q, c), NaiveResult(q, c); !tuplesEqual(got, want) {
						t.Errorf("clone served stale result: %v vs naive %v (gen %d)", got, want, c.Generation())
						return
					}
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()
}

// FuzzEvalCacheInterleave interprets the fuzz input as a script of database
// and cache operations — insert, delete, clone, switch database, switch
// query, toggle the global cache — and after every step cross-checks the
// cached/indexed evaluator against the naive reference on the live
// database. Any stale cache entry (a generation not bumped, a clone sharing
// an entry with its origin, a toggle leaving a poisoned entry behind)
// surfaces as a divergence from NaiveResult.
func FuzzEvalCacheInterleave(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 4, 0, 4})                     // insert, eval, insert, eval
	f.Add([]byte{0, 4, 1, 4})                     // insert, eval, delete, eval
	f.Add([]byte{0, 4, 2, 8, 4, 3, 4})            // warm, clone, edit clone, eval both
	f.Add([]byte{0, 4, 5, 4, 5, 4})               // toggle cache off and on between evals
	f.Add([]byte{0, 8, 16, 24, 4, 2, 3, 1, 4, 3}) // mixed script
	f.Add([]byte{0, 0, 4, 4, 1, 1, 4, 4})         // duplicate no-op edits
	f.Fuzz(func(t *testing.T, script []byte) {
		defer SetCache(true)
		s := schema.New(
			schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
			schema.Relation{Name: "S", Attrs: []string{"b"}},
		)
		queries := make([]*cq.Query, 0, 4)
		for _, text := range []string{
			"(x) :- R(x, y).",
			"(x, y) :- R(x, y), x != y.",
			"(x) :- R(x, y), S(y).",
			"(x) :- R(x, y), not S(x), y != 'C1'.",
		} {
			q, err := cq.Parse(text)
			if err != nil {
				t.Fatalf("parse %q: %v", text, err)
			}
			if err := q.Validate(s); err != nil {
				t.Fatalf("validate %q: %v", text, err)
			}
			queries = append(queries, q)
		}
		consts := []string{"C0", "C1", "C2"}
		fact := func(b byte) db.Fact {
			if b&0x40 != 0 {
				return db.NewFact("S", consts[(b>>4)&3%3])
			}
			return db.NewFact("R", consts[(b>>2)&3%3], consts[(b>>4)&3%3])
		}
		dbs := []*db.Database{db.New(s)}
		cur, qi := 0, 0
		check := func(step int, op string) {
			d := dbs[cur]
			q := queries[qi]
			got := Result(q, d)
			want := NaiveResult(q, d)
			if !tuplesEqual(got, want) {
				t.Fatalf("step %d (%s, db %d gen %d, query %s): Result %v, naive %v",
					step, op, cur, d.Generation(), q, got, want)
			}
		}
		for i, b := range script {
			switch b % 6 {
			case 0:
				if _, err := dbs[cur].InsertFact(fact(b)); err != nil {
					t.Fatal(err)
				}
				check(i, "insert")
			case 1:
				if _, err := dbs[cur].DeleteFact(fact(b)); err != nil {
					t.Fatal(err)
				}
				check(i, "delete")
			case 2:
				if len(dbs) < 4 {
					dbs = append(dbs, dbs[cur].Clone())
				}
				check(i, "clone")
			case 3:
				cur = int(b>>3) % len(dbs)
				check(i, "switch-db")
			case 4:
				qi = int(b>>3) % len(queries)
				check(i, "switch-query")
			case 5:
				SetCache(b&0x08 != 0)
				check(i, "toggle-cache")
			}
		}
		// Final pass: every database against every query, warm and cold.
		SetCache(true)
		for di, d := range dbs {
			for qj, q := range queries {
				want := NaiveResult(q, d)
				if got := Result(q, d); !tuplesEqual(got, want) {
					t.Fatalf("final cold (db %d, query %d): Result %v, naive %v", di, qj, got, want)
				}
				if got := Result(q, d); !tuplesEqual(got, want) {
					t.Fatalf("final warm (db %d, query %d): Result %v, naive %v", di, qj, got, want)
				}
			}
		}
	})
}
