package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// randQuery builds a random safe query over R(a,b), S(b,c): 1-3 positive
// atoms with random variable/constant arguments, plus optional inequalities
// and negated atoms over bound variables.
func randQuery(rng *rand.Rand) *cq.Query {
	vars := []string{"x", "y", "z", "w"}
	consts := []string{"C0", "C1", "C2"}
	term := func() cq.Term {
		if rng.Intn(4) == 0 {
			return cq.Const(consts[rng.Intn(len(consts))])
		}
		return cq.Var(vars[rng.Intn(len(vars))])
	}
	rels := []struct {
		name  string
		arity int
	}{{"R", 2}, {"S", 2}}

	q := &cq.Query{}
	nAtoms := 1 + rng.Intn(3)
	for i := 0; i < nAtoms; i++ {
		rel := rels[rng.Intn(len(rels))]
		atom := cq.Atom{Rel: rel.name}
		for j := 0; j < rel.arity; j++ {
			atom.Args = append(atom.Args, term())
		}
		q.Atoms = append(q.Atoms, atom)
	}
	bound := map[string]bool{}
	for _, a := range q.Atoms {
		for v := range a.Vars() {
			bound[v] = true
		}
	}
	var boundVars []string
	for _, v := range vars {
		if bound[v] {
			boundVars = append(boundVars, v)
		}
	}
	if len(boundVars) == 0 {
		// All-constant query: a boolean query; give it an empty head.
		return q
	}
	// Head: a random non-empty subset of bound variables.
	for _, v := range boundVars {
		if rng.Intn(2) == 0 {
			q.Head = append(q.Head, cq.Var(v))
		}
	}
	if len(q.Head) == 0 {
		q.Head = append(q.Head, cq.Var(boundVars[0]))
	}
	// Optional inequality over bound variables.
	if len(boundVars) >= 2 && rng.Intn(2) == 0 {
		q.Ineqs = append(q.Ineqs, cq.Ineq{
			Left:  cq.Var(boundVars[rng.Intn(len(boundVars))]),
			Right: cq.Var(boundVars[rng.Intn(len(boundVars))]),
		})
	}
	// Optional safe negated atom.
	if rng.Intn(3) == 0 {
		rel := rels[rng.Intn(len(rels))]
		atom := cq.Atom{Rel: rel.name}
		for j := 0; j < rel.arity; j++ {
			if rng.Intn(3) == 0 {
				atom.Args = append(atom.Args, cq.Const(consts[rng.Intn(len(consts))]))
			} else {
				atom.Args = append(atom.Args, cq.Var(boundVars[rng.Intn(len(boundVars))]))
			}
		}
		q.Negs = append(q.Negs, atom)
	}
	return q
}

func randDB(rng *rand.Rand, s *schema.Schema) *db.Database {
	d := db.New(s)
	consts := []string{"C0", "C1", "C2"}
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		rel := "R"
		if rng.Intn(2) == 0 {
			rel = "S"
		}
		d.InsertFact(db.NewFact(rel, consts[rng.Intn(3)], consts[rng.Intn(3)]))
	}
	return d
}

// TestEvalSoundnessProperty: every assignment returned by Eval really is a
// valid assignment — atoms map to facts of D, inequalities hold, negated
// atoms match nothing — and every returned witness is a subset of D.
func TestEvalSoundnessProperty(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 400; trial++ {
		q := randQuery(rng)
		if err := q.Validate(s); err != nil {
			continue // generator occasionally builds duplicate-variable heads etc.
		}
		d := randDB(rng, s)
		for _, a := range Eval(q, d) {
			if !a.TotalFor(q) {
				t.Fatalf("trial %d: partial assignment returned: %v for %s", trial, a, q)
			}
			for _, atom := range q.Atoms {
				f, ok := a.AtomFact(atom)
				if !ok || !d.Has(f) {
					t.Fatalf("trial %d: atom %v not grounded in D under %v (query %s)", trial, atom, a, q)
				}
			}
			for _, e := range q.Ineqs {
				if !a.IneqHolds(e) {
					t.Fatalf("trial %d: inequality %v violated by %v", trial, e, a)
				}
			}
			for _, atom := range q.Negs {
				if f, ok := a.AtomFact(atom); ok && d.Has(f) {
					t.Fatalf("trial %d: negated atom %v matched %v", trial, atom, f)
				}
			}
			for _, f := range a.Witness(q) {
				if !d.Has(f) {
					t.Fatalf("trial %d: witness fact %v not in D", trial, f)
				}
			}
		}
	}
}

// TestEvalCompletenessProperty: indexed evaluation agrees with the naive
// reference on random queries and databases (including negation).
func TestEvalCompletenessProperty(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 300; trial++ {
		q := randQuery(rng)
		if err := q.Validate(s); err != nil {
			continue
		}
		d := randDB(rng, s)
		fast := Eval(q, d)
		slow := NaiveEval(q, d)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d (%s): %d vs %d assignments", trial, q, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i].Key() != slow[i].Key() {
				t.Fatalf("trial %d (%s): assignment %d differs", trial, q, i)
			}
		}
	}
}

// TestAnswerHoldsConsistentWithResult: AnswerHolds(t) iff t ∈ Result.
func TestAnswerHoldsConsistentWithResult(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		q := randQuery(rng)
		if err := q.Validate(s); err != nil || len(q.Head) == 0 {
			continue
		}
		d := randDB(rng, s)
		res := Result(q, d)
		inRes := make(map[string]bool, len(res))
		for _, tp := range res {
			inRes[tp.Key()] = true
			if !AnswerHolds(q, d, tp) {
				t.Fatalf("trial %d: %v ∈ Result but AnswerHolds false (query %s)", trial, tp, q)
			}
		}
		// Probe a few random tuples not in the result.
		consts := []string{"C0", "C1", "C2"}
		for probe := 0; probe < 5; probe++ {
			tp := make(db.Tuple, len(q.Head))
			for i := range tp {
				tp[i] = consts[rng.Intn(3)]
			}
			if !inRes[tp.Key()] && AnswerHolds(q, d, tp) {
				t.Fatalf("trial %d: %v ∉ Result but AnswerHolds true (query %s)", trial, tp, q)
			}
		}
	}
}

// TestParserRoundTripProperty: String() of a random valid query reparses to
// an identical query.
func TestParserRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 300; trial++ {
		q := randQuery(rng)
		text := q.String()
		q2, err := cq.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: reparse of %q failed: %v", trial, text, err)
		}
		if q2.String() != text {
			t.Fatalf("trial %d: round trip changed %q -> %q", trial, text, q2.String())
		}
	}
}

// TestDistanceTriangleInequality: the symmetric-difference distance satisfies
// the triangle inequality (it is a metric on instances).
func TestDistanceTriangleInequality(t *testing.T) {
	s := schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		a := randDB(rng, s)
		b := randDB(rng, s)
		c := randDB(rng, s)
		if a.Distance(c) > a.Distance(b)+b.Distance(c) {
			t.Fatalf("trial %d: d(a,c)=%d > d(a,b)+d(b,c)=%d+%d",
				trial, a.Distance(c), a.Distance(b), b.Distance(c))
		}
	}
	_ = fmt.Sprint() // keep fmt for debugging convenience
}
