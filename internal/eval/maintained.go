package eval

import (
	"sync"

	"repro/internal/cq"
	"repro/internal/db"
)

// A Maintainer serves evaluation results from incrementally maintained state
// instead of enumeration. The view engine (internal/view) registers itself
// here per store ID; Result, Witnesses, AnswerHolds and Holds consult the
// registered maintainer between the generation-stamped cache and cold
// evaluation.
//
// Every method returns (value, ok). ok == false means the maintainer cannot
// serve this call — the query is not maintained, the reader's generation does
// not match the maintained state (someone edited the store without
// propagating the delta), or the call shape is unsupported — and the caller
// falls back to cold evaluation. A maintainer must never return ok == true
// with a value that differs from what cold evaluation would produce: the
// differential harness (internal/check) enforces byte-identity against
// NaiveResult.
//
// Concurrency contract: maintained reads follow the same rules as the store
// they mirror — edits (and maintainer updates) must be serialized against
// reads by the caller. Concurrent read-only calls are safe.
type Maintainer interface {
	// MaintainedResult returns Q(D) for a maintained query.
	MaintainedResult(d db.Reader, q *cq.Query) ([]db.Tuple, bool)
	// MaintainedWitnesses returns the witness sets of answer t, in the same
	// canonical order Witnesses produces (sorted by witness key).
	MaintainedWitnesses(d db.Reader, q *cq.Query, t db.Tuple) ([][]db.Fact, bool)
	// MaintainedAnswerHolds reports whether t ∈ Q(D).
	MaintainedAnswerHolds(d db.Reader, q *cq.Query, t db.Tuple) (bool, bool)
	// MaintainedHolds reports whether the query body is satisfiable under the
	// seed. Implementations typically support only the empty seed (the
	// cleaner's insertion loop asks exactly that) and decline the rest.
	MaintainedHolds(d db.Reader, q *cq.Query, seed Assignment) (bool, bool)
}

// maintainers maps store ID -> registered maintainer. A RWMutex keeps the
// lookup cheap on the evaluation hot path; registration is rare (once per
// cleaning job).
var maintainers = struct {
	sync.RWMutex
	byID map[uint64]Maintainer
}{byID: make(map[uint64]Maintainer)}

// SetMaintainer registers m as the maintainer for the store with the given
// ID, replacing any previous registration.
func SetMaintainer(id uint64, m Maintainer) {
	maintainers.Lock()
	maintainers.byID[id] = m
	maintainers.Unlock()
}

// ClearMaintainer removes the registration for the store ID, but only if m is
// still the registered maintainer (a finished job must not clobber a
// successor's registration).
func ClearMaintainer(id uint64, m Maintainer) {
	maintainers.Lock()
	if maintainers.byID[id] == m {
		delete(maintainers.byID, id)
	}
	maintainers.Unlock()
}

// maintainerFor returns the maintainer registered for the reader's store, or
// nil.
func maintainerFor(d db.Reader) Maintainer {
	maintainers.RLock()
	m := maintainers.byID[d.ID()]
	maintainers.RUnlock()
	return m
}

// maintainedResult consults the registered maintainer for Q(D). Hit/miss
// metrics fire only when a maintainer is actually registered for the store,
// so the counters measure maintained-mode coverage, not unrelated traffic.
func maintainedResult(d db.Reader, q *cq.Query) ([]db.Tuple, bool) {
	m := maintainerFor(d)
	if m == nil {
		return nil, false
	}
	out, ok := m.MaintainedResult(d, q)
	countMaintained(ok)
	return out, ok
}

func maintainedWitnesses(d db.Reader, q *cq.Query, t db.Tuple) ([][]db.Fact, bool) {
	m := maintainerFor(d)
	if m == nil {
		return nil, false
	}
	out, ok := m.MaintainedWitnesses(d, q, t)
	countMaintained(ok)
	return out, ok
}

func maintainedAnswerHolds(d db.Reader, q *cq.Query, t db.Tuple) (bool, bool) {
	m := maintainerFor(d)
	if m == nil {
		return false, false
	}
	v, ok := m.MaintainedAnswerHolds(d, q, t)
	countMaintained(ok)
	return v, ok
}

func maintainedHolds(d db.Reader, q *cq.Query, seed Assignment) (bool, bool) {
	m := maintainerFor(d)
	if m == nil {
		return false, false
	}
	v, ok := m.MaintainedHolds(d, q, seed)
	countMaintained(ok)
	return v, ok
}

func countMaintained(hit bool) {
	if hit {
		rec().Inc(MetricMaintainedHits)
	} else {
		rec().Inc(MetricMaintainedMisses)
	}
}
