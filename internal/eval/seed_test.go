package eval

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/schema"
)

// Regression tests for the seed-validation bug: search documented that it
// validated the seed up front but only checked seeded inequalities — atoms
// fully grounded by the seed (or by constants) were never tested against D
// before the enumeration started. validateSeed now prunes those immediately;
// these tests pin the semantics for both the serial and the parallel path.

func seedTestSchema() *schema.Schema {
	return schema.New(
		schema.Relation{Name: "R", Attrs: []string{"a", "b"}},
		schema.Relation{Name: "S", Attrs: []string{"b", "c"}},
	)
}

// TestGroundAtomValidatedAgainstDB: a query whose atom is ground (all
// constants) yields answers iff that fact is present.
func TestGroundAtomValidatedAgainstDB(t *testing.T) {
	s := seedTestSchema()
	d := db.New(s)
	if _, err := d.InsertFact(db.NewFact("S", "C1", "C2")); err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse("(x) :- R(C0, C1), S(C1, x).")

	// R(C0, C1) is absent: the whole enumeration must prune to nothing.
	if got := Result(q, d, NoCache()); len(got) != 0 {
		t.Fatalf("Result = %v with ground atom R(C0,C1) absent, want empty", got)
	}
	if Holds(q, d, Assignment{}, NoCache()) {
		t.Fatal("Holds = true with ground atom absent")
	}

	// Inserting the ground fact turns the answers on.
	if _, err := d.InsertFact(db.NewFact("R", "C0", "C1")); err != nil {
		t.Fatal(err)
	}
	want := []db.Tuple{{"C2"}}
	if got := Result(q, d, NoCache()); !tuplesEqual(got, want) {
		t.Fatalf("Result = %v with ground atom present, want %v", got, want)
	}
}

// TestSeedGroundsAtomAgainstDB: a seed that fully grounds an atom to an
// absent fact has no extensions, and one grounding it to a present fact
// keeps its extensions — for Extensions, Satisfiable and the parallel path
// alike.
func TestSeedGroundsAtomAgainstDB(t *testing.T) {
	s := seedTestSchema()
	d := db.New(s)
	for _, f := range []db.Fact{
		db.NewFact("R", "C0", "C1"),
		db.NewFact("S", "C1", "C2"),
		db.NewFact("S", "C1", "C0"),
	} {
		if _, err := d.InsertFact(f); err != nil {
			t.Fatal(err)
		}
	}
	q := cq.MustParse("(x) :- R(u, v), S(v, x).")

	// Seed {u:C2, v:C2} grounds R(u,v) to the absent R(C2,C2).
	if exts := Extensions(q, d, Assignment{"u": "C2", "v": "C2"}, NoCache()); len(exts) != 0 {
		t.Fatalf("Extensions = %v for seed grounding an absent atom, want none", exts)
	}
	if Satisfiable(q, d, Assignment{"u": "C2", "v": "C2"}, NoCache()) {
		t.Fatal("Satisfiable = true for seed grounding an absent atom")
	}

	// Seed {u:C0, v:C1} grounds R(u,v) to the present R(C0,C1).
	exts := Extensions(q, d, Assignment{"u": "C0", "v": "C1"}, NoCache())
	if len(exts) != 2 {
		t.Fatalf("Extensions = %v for valid seed, want 2 (x=C0 and x=C2)", exts)
	}
	if !Satisfiable(q, d, Assignment{"u": "C0", "v": "C1"}, NoCache()) {
		t.Fatal("Satisfiable = false for valid seed")
	}

	// The parallel path runs the same validation before partitioning.
	extsPar := Extensions(q, d, Assignment{"u": "C2", "v": "C2"}, NoCache(), Parallel(4))
	if len(extsPar) != 0 {
		t.Fatalf("parallel Extensions = %v for seed grounding an absent atom, want none", extsPar)
	}
}

// TestSeedViolatedInequalityStillPruned: the pre-existing inequality check
// keeps working alongside the new ground-atom check.
func TestSeedViolatedInequalityStillPruned(t *testing.T) {
	s := seedTestSchema()
	d := db.New(s)
	if _, err := d.InsertFact(db.NewFact("R", "C0", "C0")); err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse("(x, y) :- R(x, y), x != y.")
	if exts := Extensions(q, d, Assignment{"x": "C0", "y": "C0"}, NoCache()); len(exts) != 0 {
		t.Fatalf("Extensions = %v for seed violating x != y, want none", exts)
	}
}
