package eval

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/obs"
)

// TestUnionMetricsRecorded pins the observability contract of the UCQ entry
// points: ResultUnion and AnswerHoldsUnion record their own latency series
// (previously they were invisible — only the per-disjunct Result timers
// fired), and the per-disjunct series keeps firing alongside.
func TestUnionMetricsRecorded(t *testing.T) {
	r := obs.New()
	Instrument(r)
	defer Instrument(nil)

	d, _ := dataset.Figure1()
	u := cq.MustParseUnion("(x) :- Teams(x, EU) ; (x) :- Teams(x, SA)")

	ResultUnion(u, d, NoCache())
	if !AnswerHoldsUnion(u, d, db.Tuple{"NED"}, NoCache()) {
		t.Fatal("(NED) should hold in the union")
	}

	snap := r.Snapshot()
	if c := snap.Histograms[MetricResultUnionSeconds].Count; c != 1 {
		t.Errorf("%s count = %d, want 1", MetricResultUnionSeconds, c)
	}
	if c := snap.Histograms[MetricAnswerHoldsUnionSeconds].Count; c != 1 {
		t.Errorf("%s count = %d, want 1", MetricAnswerHoldsUnionSeconds, c)
	}
	if c := snap.Histograms[MetricResultSeconds].Count; c != 2 {
		t.Errorf("%s count = %d, want 2 (one per disjunct)", MetricResultSeconds, c)
	}
}

// TestCacheCounterMetricsExposed: the cache counters land in the recorder
// under their documented names, so the server's /api/v1/metrics endpoint
// serves them without further wiring.
func TestCacheCounterMetricsExposed(t *testing.T) {
	r := obs.New()
	Instrument(r)
	defer Instrument(nil)

	d, _ := dataset.Figure1()
	q := dataset.IntroQ1()
	Result(q, d) // miss + store
	Result(q, d) // hit

	snap := r.Snapshot()
	for _, name := range []string{MetricCacheHits, MetricCacheMisses} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s never recorded", name)
		}
	}
}
