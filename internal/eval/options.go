package eval

import "runtime"

// Option tunes one evaluation call. The zero configuration — serial
// enumeration with the generation-stamped cache consulted — is what every
// caller gets without options, and is byte-identical in output to any other
// configuration: options only trade time for resources.
type Option func(*config)

// config is the resolved per-call evaluation configuration.
type config struct {
	workers int  // effective worker count; 1 = serial
	noCache bool // bypass the result/witness cache entirely
}

// Parallel partitions the top-level scan of the enumeration across n worker
// goroutines (per-worker results are merged deterministically, so output
// order is unchanged). n ≤ 0 selects GOMAXPROCS workers; n == 1 (or omitting
// the option) evaluates serially. Parallelism pays off on databases where a
// single evaluation takes milliseconds; on tiny instances the serial path is
// faster and the engine falls back to it automatically when the driving scan
// is too small to split.
func Parallel(n int) Option {
	return func(c *config) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.workers = n
	}
}

// NoCache makes the call bypass the evaluation cache AND any registered
// incremental-view maintainer: nothing is looked up and nothing is stored,
// the call always enumerates cold. Benchmarks and the differential harness
// use it to measure (and cross-check against) cold evaluation; it is also
// the escape hatch for callers that mutate the database outside db.Store's
// mutation methods (none in this repository do).
func NoCache() Option {
	return func(c *config) { c.noCache = true }
}

// resolve folds the options into a config.
func resolve(opts []Option) config {
	c := config{workers: 1}
	for _, o := range opts {
		o(&c)
	}
	if c.workers < 1 {
		c.workers = 1
	}
	return c
}
