package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/db"
)

// BenchmarkWitnessKey guards the dedup-key construction of Witnesses: the
// key itself is built with one pre-sized allocation (strings.Builder), where
// the string concatenation it replaced allocated a growing copy per fact —
// quadratic bytes in the witness size. Run with -benchmem; allocations must
// stay linear in len(w) (the per-fact Fact.Key renderings plus one builder).
func BenchmarkWitnessKey(b *testing.B) {
	w := make([]db.Fact, 16)
	for i := range w {
		w[i] = db.NewFact("Games", fmt.Sprintf("%02d.07.2014", i), "GER", "ARG", "Final", "1:0")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if witnessKey(w) == "" {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkSortAssignments guards the precomputed-key sort: Assignment.Key
// sorts and concatenates the bindings, so rebuilding it inside the comparator
// (as sort.Slice callbacks used to) costs O(n log n) key constructions per
// sort instead of O(n).
func BenchmarkSortAssignments(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	base := make([]Assignment, 512)
	for i := range base {
		base[i] = Assignment{
			"x": fmt.Sprintf("v%03d", rng.Intn(1000)),
			"y": fmt.Sprintf("v%03d", rng.Intn(1000)),
			"z": fmt.Sprintf("v%03d", rng.Intn(1000)),
		}
	}
	buf := make([]Assignment, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		sortAssignments(buf)
	}
}
