// Command qocoserver runs QOCO as a web service (the paper's Figure 5
// deployment): a crowd console at / serves pending questions to crowd
// members, while cleaning jobs are started over the JSON API.
//
//	qocoserver -addr :8080 -dataset figure1
//
// then, in another terminal:
//
//	curl -X POST localhost:8080/clean -d '{"sql": "SELECT t.name FROM Teams t WHERE t.continent = '\''EU'\''"}'
//
// and answer the questions in a browser at http://localhost:8080/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ds := flag.String("dataset", "figure1", "built-in dataset: figure1, soccer, dbgroup")
	flag.Parse()

	var d *db.Database
	switch *ds {
	case "figure1":
		d, _ = dataset.Figure1()
	case "soccer":
		d = dataset.Soccer(dataset.SoccerOpts{})
	case "dbgroup":
		d = dataset.DBGroup(dataset.DBGroupOpts{})
	default:
		fmt.Fprintf(os.Stderr, "qocoserver: unknown dataset %q\n", *ds)
		os.Exit(2)
	}

	srv := server.New(d, core.Config{})
	log.Printf("QOCO crowd console on http://localhost%s/ (dataset %s, %d tuples)", *addr, *ds, d.Len())
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
