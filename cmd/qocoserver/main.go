// Command qocoserver runs QOCO as a web service (the paper's Figure 5
// deployment): a crowd console at / serves pending questions to crowd
// members, while cleaning jobs are started over the versioned JSON API.
//
//	qocoserver -addr :8080 -dataset figure1
//
// then, in another terminal:
//
//	curl -X POST localhost:8080/api/v1/clean -d '{"sql": "SELECT t.name FROM Teams t WHERE t.continent = '\''EU'\''"}'
//
// and answer the questions in a browser at http://localhost:8080/. Live
// process metrics are served at /api/v1/metrics; -debug additionally mounts
// the net/http/pprof profiling handlers under /debug/pprof/. The server
// shuts down cleanly on SIGINT/SIGTERM: pending crowd questions are released
// with edit-free answers and in-flight requests get a grace period.
//
// Robustness (see docs/RESILIENCE.md): -question-deadline bounds how long a
// job waits on any one crowd question (expired questions are re-asked up to
// -max-reasks times, then degrade to the edit-free default), and -journal
// names a WAL-style job journal from which interrupted jobs are recovered on
// the next boot, replaying their already-collected answers; -compact-journal
// additionally rewrites it on boot, dropping finished jobs.
//
// Overload protection (see docs/OPERATIONS.md): every submission passes an
// admission controller tuned by -max-jobs, -rate/-burst, and
// -queue/-queue-timeout; excess load is shed with 429/503 responses carrying
// Retry-After hints. /healthz serves liveness and /readyz readiness (not
// ready while draining, the journal is failing, or the admission queue is
// saturated). Shutdown drains first: admission stops, -drain-timeout lets
// in-flight jobs finish, then remaining questions are released edit-free.
//
// Clustering (see docs/CLUSTER.md): -peers plus -replica-id joins a static
// cluster — submissions are routed to their consistent-hash owner (proxied,
// or 307-redirected with -cluster-route redirect) and peers are
// health-probed every -cluster-probe. Adding -replication DIR (requires
// -journal) ships every job-journal event to this replica's successor; when
// a replica dies its successor replays the shipped journal and resumes its
// jobs, and the dead replica's restart is fenced so nothing runs twice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/server"
	"repro/internal/storecfg"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "qocoserver: %v\n", err)
		os.Exit(1)
	}
}

// loadDataset builds the named built-in database. For figure1 it also
// returns the ground truth (the paper's DG) so the caller can report how far
// the dirty instance is from it; the synthetic generators are their own
// ground truth and return nil.
func loadDataset(name string) (d, dg *db.Database, err error) {
	switch name {
	case "figure1":
		d, dg = dataset.Figure1()
		return d, dg, nil
	case "soccer":
		return dataset.Soccer(dataset.SoccerOpts{}), nil, nil
	case "dbgroup":
		return dataset.DBGroup(dataset.DBGroupOpts{}), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want figure1, soccer, or dbgroup)", name)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	ds := flag.String("dataset", "figure1", "built-in dataset: figure1, soccer, dbgroup")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	grace := flag.Duration("grace", 5*time.Second, "shutdown grace period for in-flight requests")
	questionDeadline := flag.Duration("question-deadline", 0,
		"how long each crowd question waits for an answer before being re-asked (0 disables expiry)")
	maxReasks := flag.Int("max-reasks", 2,
		"re-asks after a question's first deadline expiry before it degrades to the edit-free default")
	journal := flag.String("journal", "",
		"path of the job journal; jobs interrupted by a crash or restart are recovered from it on boot")
	compactJournal := flag.Bool("compact-journal", false,
		"rewrite the job journal on boot, dropping finished jobs so it stops growing with server lifetime")
	maxJobs := flag.Int("max-jobs", 64, "ceiling on simultaneously-running cleaning jobs")
	rate := flag.Float64("rate", 0, "global submission rate limit in jobs/second (0 disables)")
	burst := flag.Float64("burst", 0, "token-bucket burst for -rate (0 means max(rate, 1))")
	queueCap := flag.Int("queue", 0, "admission queue capacity (0 means 4*max-jobs)")
	queueTimeout := flag.Duration("queue-timeout", 10*time.Second,
		"how long a queued submission may wait for a job slot before it is shed with 503")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight jobs to finish after admission stops")
	questionHistory := flag.Int("question-history", server.DefaultQuestionHistory,
		"resolved crowd questions retained at /api/v1/questions/log (0 disables)")
	evalWorkers := flag.Int("eval-workers", 1,
		"query-evaluation parallelism: top-level scans are partitioned across this many goroutines (1 = serial, -1 = GOMAXPROCS)")
	ivm := flag.Bool("ivm", true,
		"maintained (incremental view maintenance) evaluation: cleaning jobs propagate each edit as a delta through materialized views instead of re-evaluating the query cold (see docs/EVAL.md)")
	compactEvery := flag.Duration("compact-store", 0,
		"background disk-store compaction interval (0 disables); each run rewrites segment shards past -compact-garbage")
	compactGarbage := flag.Float64("compact-garbage", 0.5,
		"garbage ratio (dead records / total records) above which a segment shard is compacted")
	peersFlag := flag.String("peers", "",
		"cluster membership as comma-separated id=url pairs (e.g. r0=http://h0:8080,r1=http://h1:8080); empty runs single-node")
	replicaID := flag.String("replica-id", "",
		"this replica's id within -peers (required when -peers is set)")
	replicationDir := flag.String("replication", "",
		"directory for received replica journals; enables synchronous journal replication to this replica's successor (requires -journal and -peers)")
	clusterProbe := flag.Duration("cluster-probe", 2*time.Second,
		"cluster health-probe interval against each peer's /readyz")
	clusterRoute := flag.String("cluster-route", "proxy",
		"how submissions reach their ring owner: proxy (transparent) or redirect (307)")
	scfg := storecfg.Register(flag.CommandLine)
	flag.Parse()

	seed, dg, err := loadDataset(*ds)
	if err != nil {
		return err
	}
	d, err := scfg.Materialize(seed)
	var bootErr error
	if err != nil {
		if !errors.Is(err, db.ErrCorrupt) {
			return err
		}
		// Detected storage corruption: boot degraded instead of crash-looping.
		// The store stays quarantined, /readyz reports not-ready with the
		// typed error, and data endpoints return 503 until an operator runs
		// the recovery runbook (docs/OPERATIONS.md) and restarts.
		log.Printf("storage corruption detected: %v", err)
		log.Printf("booting DEGRADED with an empty in-memory placeholder; see docs/OPERATIONS.md (quarantine runbook)")
		bootErr = err
		d = db.New(seed.Schema())
	}
	defer d.Close()

	srv := server.New(d, core.Config{EvalWorkers: *evalWorkers, Incremental: *ivm})
	if bootErr != nil {
		srv.SetStoreError(bootErr)
	}
	// Route evaluator and wal metrics (witness enumeration latencies, torn-tail
	// recoveries, journal append failures) into the same recorder the server
	// serves at /api/v1/metrics.
	eval.Instrument(srv.Obs())
	wal.Instrument(srv.Obs())
	db.Instrument(srv.Obs())
	if *questionDeadline > 0 {
		srv.Queue().SetDeadline(*questionDeadline, *maxReasks)
	}
	srv.Queue().SetHistoryLimit(*questionHistory)
	srv.SetAdmission(admission.NewController(admission.Options{
		MaxConcurrent: *maxJobs,
		Rate:          *rate,
		Burst:         *burst,
		QueueCap:      *queueCap,
		QueueTimeout:  *queueTimeout,
		Obs:           srv.Obs(),
	}))
	clustered := *peersFlag != ""
	if *replicationDir != "" {
		if !clustered {
			return errors.New("-replication requires -peers")
		}
		if *journal == "" {
			return errors.New("-replication requires -journal (replication ships the job journal)")
		}
	}
	var jobLog *wal.JobLog
	var records []wal.JobRecord
	if *journal != "" {
		log.Printf("opening job journal %s", *journal)
		var walOpts []wal.JobLogOption
		if *compactJournal {
			walOpts = append(walOpts, wal.WithCompaction())
		}
		jl, recs, err := wal.OpenJobLog(*journal, walOpts...)
		if err != nil {
			return err
		}
		jobLog, records = jl, recs
		defer jobLog.Close()
		srv.SetJobLog(jobLog)
	}

	// Cluster mode: routing, membership, and (with -replication) journal
	// replication with failover. Journal recovery runs through the node's
	// boot-fencing path so jobs already claimed by a takeover are skipped.
	var node *cluster.Node
	if clustered {
		peers, err := cluster.ParsePeers(*peersFlag)
		if err != nil {
			return err
		}
		if *replicaID == "" {
			return errors.New("-peers requires -replica-id")
		}
		switch *clusterRoute {
		case "proxy", "redirect":
		default:
			return fmt.Errorf("unknown -cluster-route %q (want proxy or redirect)", *clusterRoute)
		}
		node, err = cluster.NewNode(srv, jobLog, records, cluster.Config{
			Self:          *replicaID,
			Peers:         peers,
			Dir:           *replicationDir,
			Replicate:     *replicationDir != "",
			Redirect:      *clusterRoute == "redirect",
			ProbeInterval: *clusterProbe,
			Obs:           srv.Obs(),
			Logf:          log.Printf,
		})
		if err != nil {
			return err
		}
		resumed, rerr := node.BootRecover(records)
		if rerr != nil {
			log.Printf("recovery: %v", rerr)
		}
		if resumed > 0 {
			log.Printf("recovered %d interrupted job(s) from the journal", resumed)
		}
		node.Start()
		log.Printf("cluster: replica %s of %d peers (replication %v, routing %s)",
			*replicaID, len(peers), *replicationDir != "", *clusterRoute)
	} else if jobLog != nil {
		resumed, rerr := srv.Recover(records)
		if rerr != nil {
			log.Printf("recovery: %v", rerr)
		}
		if resumed > 0 {
			log.Printf("recovered %d interrupted job(s) from the journal", resumed)
		}
	}

	// Background segment compaction: reclaim dead records from the disk
	// store on a timer, pausing while the server drains (compaction takes
	// the database write lock, which would stall a draining job's exit).
	// The period is jittered ±10% per cycle so a fleet of replicas started
	// together (or restarted by the same supervisor) doesn't compact — and
	// take the database write lock — in lockstep.
	compactDone := make(chan struct{})
	if *compactEvery > 0 {
		go func() {
			jittered := func() time.Duration {
				base := float64(*compactEvery)
				return time.Duration(base*0.9 + rand.Float64()*0.2*base)
			}
			timer := time.NewTimer(jittered())
			defer timer.Stop()
			for {
				select {
				case <-compactDone:
					return
				case <-timer.C:
				}
				timer.Reset(jittered())
				if srv.Draining() || srv.StoreError() != nil {
					continue
				}
				res, ok, err := srv.CompactStore(*compactGarbage)
				if err != nil {
					log.Printf("store compaction: %v", err)
					continue
				}
				if !ok {
					return // in-memory backend: nothing will ever compact
				}
				if res.ShardsCompacted > 0 {
					log.Printf("store compaction: %d shard(s), %d dead record(s), %d -> %d bytes",
						res.ShardsCompacted, res.RecordsDropped, res.BytesBefore, res.BytesAfter)
				}
			}
		}()
	}
	defer close(compactDone)

	mux := http.NewServeMux()
	if node != nil {
		mux.Handle("/", node.Handler())
	} else {
		mux.Handle("/", srv.Handler())
	}
	if *debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	st := d.Stats()
	log.Printf("QOCO crowd console on http://localhost%s/ (dataset %s, %d tuples, %s store)", *addr, *ds, d.Len(), st.Backend)
	if dg != nil {
		log.Printf("ground truth loaded: %d tuples (the crowd is expected to know it)", dg.Len())
	}
	if *debug {
		log.Printf("pprof enabled at http://localhost%s/debug/pprof/", *addr)
	}

	select {
	case err := <-errCh:
		return err // ListenAndServe failed before any signal
	case <-ctx.Done():
	}
	// Drain first: stop admitting (readiness flips, so load balancers route
	// away) and give in-flight jobs a window to finish on their own before
	// their crowd questions are force-released.
	log.Printf("shutting down: draining (%d job(s) in flight, waiting up to %s)", srv.ActiveJobs(), *drainTimeout)
	srv.Drain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	err = srv.DrainWait(drainCtx)
	cancelDrain()
	if err != nil {
		log.Printf("drain: %v", err)
	}
	log.Printf("releasing pending crowd questions")
	if node != nil {
		// Stop probing and seal journal shipping only after the drain window:
		// events journaled by draining jobs still reach the successor.
		node.Stop()
	}
	// Unblock oracle calls so any remaining cleaning jobs finish with
	// edit-free answers instead of holding Shutdown past the grace period.
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
