// Command qoco is the interactive QOCO prototype (Figure 5's architecture
// with a human playing the oracle crowd): it loads a database, evaluates a
// query, and cleans the database by asking the user boolean and completion
// questions on stdin.
//
// Usage:
//
//	qoco -dataset figure1                          # paper's Figure 1 sample
//	qoco -dataset figure1 -oracle perfect          # simulated oracle demo
//	qoco -dataset soccer -query 'q(x) :- Teams(x, EU)'
//	qoco -data facts.csv -schemaspec 'R(a,b);S(b,c)' -query '(x) :- R(x,y)'
//
// With -oracle perfect the built-in ground truth answers all questions (only
// available for the built-in datasets); the default human oracle prompts on
// stdin.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/crowd"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/sqlfe"
	"repro/internal/storecfg"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qoco:", err)
		os.Exit(1)
	}
}

func run() error {
	ds := flag.String("dataset", "figure1", "built-in dataset: figure1, soccer, dbgroup (ignored with -data)")
	dataFile := flag.String("data", "", "CSV file of facts (rel,v1,...,vk) to clean instead of a built-in dataset")
	schemaSpec := flag.String("schemaspec", "", "schema for -data: 'R(a,b);S(b,c)'")
	queryText := flag.String("query", "", "query to clean, in Datalog-style CQ syntax (defaults per dataset)")
	sqlText := flag.String("sql", "", "query to clean, as a SELECT statement (alternative to -query)")
	oracleKind := flag.String("oracle", "human", "oracle: human (stdin) or perfect (built-in ground truth)")
	transcript := flag.Bool("transcript", false, "log every crowd question and answer to stderr")
	dbinfo := flag.Bool("dbinfo", false, "print the fact store's stats (backend, relations, shards, disk bytes, per-shard garbage) as JSON and exit")
	compact := flag.Bool("compact", false, "compact the disk store's segments (drop dead records), print the result as JSON, and exit")
	ivm := flag.Bool("ivm", true, "maintained (incremental view maintenance) evaluation during cleaning; output is identical either way (see docs/EVAL.md)")
	scfg := storecfg.Register(flag.CommandLine)
	flag.Parse()

	seed, dg, defQuery, err := loadDatabase(*ds, *dataFile, *schemaSpec)
	if err != nil {
		return err
	}
	d, err := scfg.Materialize(seed)
	if err != nil {
		return err
	}
	defer d.Close()
	if *dbinfo {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(d.Stats())
	}
	if *compact {
		cds, ok := d.(*db.DiskStore)
		if !ok {
			return fmt.Errorf("-compact requires the disk backend (-store disk)")
		}
		res, err := cds.Compact(0)
		if err != nil {
			return fmt.Errorf("compacting store: %w", err)
		}
		if err := cds.Sync(); err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	var q *cq.Query
	switch {
	case *queryText != "" && *sqlText != "":
		return fmt.Errorf("pass either -query or -sql, not both")
	case *sqlText != "":
		if q, err = sqlfe.Parse(d.Schema(), *sqlText); err != nil {
			return err
		}
	default:
		qText := *queryText
		if qText == "" {
			qText = defQuery
		}
		if qText == "" {
			return fmt.Errorf("no query given: pass -query or -sql")
		}
		if q, err = cq.Parse(qText); err != nil {
			return err
		}
		if err := q.Validate(d.Schema()); err != nil {
			return err
		}
	}

	var oracle crowd.Oracle
	switch *oracleKind {
	case "human":
		oracle = crowd.NewInteractive(os.Stdin, os.Stdout)
	case "perfect":
		if dg == nil {
			return fmt.Errorf("-oracle perfect requires a built-in dataset with ground truth")
		}
		oracle = crowd.NewPerfect(dg)
	default:
		return fmt.Errorf("unknown oracle %q", *oracleKind)
	}
	if *transcript {
		oracle = crowd.NewTranscript(oracle, os.Stderr)
	}

	fmt.Printf("Query: %s\n", q)
	fmt.Printf("Initial result:\n")
	for _, t := range eval.Result(q, d) {
		fmt.Printf("  %s\n", t)
	}

	cleaner := core.New(d, oracle, core.Config{Incremental: *ivm})
	report, err := cleaner.Clean(context.Background(), q)
	if err != nil {
		return err
	}

	fmt.Printf("\nClean result:\n")
	for _, t := range eval.Result(q, d) {
		fmt.Printf("  %s\n", t)
	}
	fmt.Printf("\nWrong answers removed:  %d\n", report.WrongAnswers)
	fmt.Printf("Missing answers added:  %d\n", report.MissingAnswers)
	fmt.Printf("Database edits:\n")
	for _, e := range report.Edits {
		fmt.Printf("  %s\n", e)
	}
	s := report.Crowd
	fmt.Printf("Crowd work: %d closed answers, %d variables filled (total %d)\n",
		s.Closed(), s.VariablesFilled, s.Total())
	return d.Sync()
}

// loadDatabase resolves the dataset flags into a dirty database, an optional
// ground truth, and a default query.
func loadDatabase(ds, dataFile, schemaSpec string) (d, dg *db.Database, defQuery string, err error) {
	if dataFile != "" {
		if schemaSpec == "" {
			return nil, nil, "", fmt.Errorf("-data requires -schemaspec")
		}
		s, err := parseSchemaSpec(schemaSpec)
		if err != nil {
			return nil, nil, "", err
		}
		d := db.New(s)
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, nil, "", err
		}
		defer f.Close()
		if err := d.LoadCSV(f); err != nil {
			return nil, nil, "", err
		}
		return d, nil, "", nil
	}
	switch ds {
	case "figure1":
		d, dg := dataset.Figure1()
		return d, dg, dataset.IntroQ1().String(), nil
	case "soccer":
		dg := dataset.Soccer(dataset.SoccerOpts{})
		return dg.Clone(), dg, dataset.SoccerQ1().String(), nil
	case "dbgroup":
		dg := dataset.DBGroup(dataset.DBGroupOpts{})
		return dg.Clone(), dg, dataset.DBGroupQ2().String(), nil
	default:
		return nil, nil, "", fmt.Errorf("unknown dataset %q", ds)
	}
}

// parseSchemaSpec parses "R(a,b);S(b,c)" into a schema.
func parseSchemaSpec(spec string) (*schema.Schema, error) {
	s := &schema.Schema{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '(')
		if open <= 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("bad relation spec %q (want R(a,b))", part)
		}
		rel := schema.Relation{Name: strings.TrimSpace(part[:open])}
		for _, attr := range strings.Split(part[open+1:len(part)-1], ",") {
			rel.Attrs = append(rel.Attrs, strings.TrimSpace(attr))
		}
		if err := s.Add(rel); err != nil {
			return nil, err
		}
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("empty schema spec")
	}
	return s, nil
}
