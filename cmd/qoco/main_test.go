package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseSchemaSpec(t *testing.T) {
	s, err := parseSchemaSpec("R(a, b); S(b,c)")
	if err != nil {
		t.Fatalf("parseSchemaSpec: %v", err)
	}
	if s.Len() != 2 || s.Arity("R") != 2 || s.Arity("S") != 2 {
		t.Errorf("schema = %v", s)
	}
	r, _ := s.Relation("R")
	if r.Attrs[0] != "a" || r.Attrs[1] != "b" {
		t.Errorf("attrs = %v", r.Attrs)
	}
}

func TestParseSchemaSpecErrors(t *testing.T) {
	bad := []string{
		"",
		";",
		"R",
		"Ra,b)",
		"(a,b)",
		"R(a,b); R(c)",
		"R(a,a)",
	}
	for _, spec := range bad {
		if _, err := parseSchemaSpec(spec); err == nil {
			t.Errorf("parseSchemaSpec(%q): want error", spec)
		}
	}
}

func TestLoadDatabaseBuiltins(t *testing.T) {
	for _, ds := range []string{"figure1", "soccer", "dbgroup"} {
		d, dg, def, err := loadDatabase(ds, "", "")
		if err != nil {
			t.Fatalf("loadDatabase(%s): %v", ds, err)
		}
		if d == nil || dg == nil || def == "" {
			t.Errorf("loadDatabase(%s) = %v, %v, %q", ds, d, dg, def)
		}
	}
	if _, _, _, err := loadDatabase("nope", "", ""); err == nil {
		t.Errorf("unknown dataset accepted")
	}
}

func TestLoadDatabaseCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.csv")
	os.WriteFile(path, []byte("R,x,y\nS,y,z\n"), 0o644)
	d, dg, _, err := loadDatabase("", path, "R(a,b);S(b,c)")
	if err != nil {
		t.Fatalf("loadDatabase: %v", err)
	}
	if dg != nil {
		t.Errorf("CSV data has no ground truth; got %v", dg)
	}
	if d.Len() != 2 {
		t.Errorf("loaded %d facts, want 2", d.Len())
	}
	// Errors: missing schemaspec, missing file, bad contents.
	if _, _, _, err := loadDatabase("", path, ""); err == nil {
		t.Errorf("missing schemaspec accepted")
	}
	if _, _, _, err := loadDatabase("", filepath.Join(dir, "nope.csv"), "R(a,b)"); err == nil {
		t.Errorf("missing file accepted")
	}
	os.WriteFile(path, []byte("Bogus,x\n"), 0o644)
	if _, _, _, err := loadDatabase("", path, "R(a,b)"); err == nil {
		t.Errorf("bad csv contents accepted")
	}
}
