// Command qocobench regenerates the paper's evaluation tables (§7): the
// perfect-oracle deletion/insertion/mixed experiments of Figures 3a-3f, the
// imperfect-expert experiment of Figure 4, and the DBGroup report showcase of
// §7.1. Output is one text table per figure, with the same bar series the
// paper plots (#results / #questions / #avoided, or the question-type mix).
//
// Usage:
//
//	qocobench                 # every figure at the paper's defaults
//	qocobench -fig 3a         # one figure
//	qocobench -seeds 5        # average over more random seeds
//	qocobench -tournaments 8  # smaller Soccer database for quick runs
//	qocobench -fig overload   # admission-control rate sweep (-json for JSON)
//	qocobench -fig eval       # evaluator cold/warm/parallel benchmark
//	qocobench -fig eval -json # …writing BENCH_eval.json (the bench trajectory)
//	qocobench -fig ivm        # per-edit incremental maintenance vs cold re-eval
//	qocobench -fig ivm -json  # …writing BENCH_ivm.json (the IVM trajectory)
//	qocobench -fig cluster    # 3-replica failover soak with chaos kills
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/metamorph"
	"repro/internal/obs"
	"repro/internal/storecfg"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3a, 3b, 3c, 3d, 3e, 3f, 4, dbgroup, sweep, errsweep, heuristics, overload, eval, ivm, cluster, metamorph, or all")
	seeds := flag.Int("seeds", 3, "number of random seeds to average over")
	tournaments := flag.Int("tournaments", 0, "number of World Cup editions in the Soccer database (0 = full 20)")
	wrong := flag.Int("wrong", 5, "wrong answers injected per query (Figures 3a, 3c, 4)")
	missing := flag.Int("missing", 5, "missing answers injected per query (Figures 3b, 3c, 4)")
	errRate := flag.Float64("errrate", 0.1, "per-question error rate of imperfect experts (Figure 4)")
	overloadDur := flag.Duration("overload-duration", 2*time.Second, "load duration per rate point of the overload sweep")
	jsonOut := flag.Bool("json", false, "overload/cluster: emit JSON to stdout; eval: write BENCH_eval.json")
	parallel := flag.Int("parallel", 4, "eval-benchmark worker count measured against serial evaluation")
	evalWorkers := flag.Int("eval-workers", 0, "parallel workers for the figures' upper-bound witness enumerations (0 = serial)")
	ivmEdits := flag.Int("ivm-edits", 40, "length of the IVM benchmark's seeded edit script (-fig ivm)")
	metamorphSeeds := flag.Int("metamorph-seeds", 2000, "seeded workloads per oracle in the metamorphic sweep (-fig metamorph)")
	clusterSubs := flag.Int("cluster-submissions", 2000, "cleaning jobs submitted by the cluster soak (-fig cluster)")
	clusterKills := flag.Int("cluster-kills", 12, "kill/restart chaos rounds in the cluster soak (-fig cluster)")
	scfg := storecfg.Register(flag.CommandLine)
	flag.Parse()

	cfg := experiment.Config{
		WrongAnswers:   *wrong,
		MissingAnswers: *missing,
		ExpertError:    *errRate,
		Soccer:         dataset.SoccerOpts{Tournaments: *tournaments},
		EvalWorkers:    *evalWorkers,
	}
	for s := int64(1); s <= int64(*seeds); s++ {
		cfg.Seeds = append(cfg.Seeds, s)
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }
	any := false
	if run("3a") {
		fmt.Print(experiment.RenderRows("Figure 3a — Deletion, multiple queries (perfect oracle)", experiment.Fig3a(cfg)), "\n")
		any = true
	}
	if run("3b") {
		fmt.Print(experiment.RenderRows("Figure 3b — Insertion, multiple queries (perfect oracle)", experiment.Fig3b(cfg)), "\n")
		any = true
	}
	if run("3c") {
		fmt.Print(experiment.RenderRows("Figure 3c — Mixed, multiple queries (perfect oracle)", experiment.Fig3c(cfg)), "\n")
		any = true
	}
	if run("3d") {
		fmt.Print(experiment.RenderRows("Figure 3d — Deletion vs number of wrong answers (Q3)", experiment.Fig3d(cfg)), "\n")
		any = true
	}
	if run("3e") {
		fmt.Print(experiment.RenderRows("Figure 3e — Insertion vs number of missing answers (Q3)", experiment.Fig3e(cfg)), "\n")
		any = true
	}
	if run("3f") {
		fmt.Print(experiment.RenderMix("Figure 3f — Mixed, question types (Q3)", experiment.Fig3f(cfg)), "\n")
		any = true
	}
	if run("4") {
		fmt.Print(experiment.RenderMix("Figure 4 — Real (imperfect) expert crowd, majority of 3", experiment.Fig4(cfg)), "\n")
		any = true
	}
	if run("dbgroup") {
		fmt.Print(experiment.RenderShowcase(experiment.DBGroupShowcase(cfg.Seeds[0])), "\n")
		any = true
	}
	if run("heuristics") {
		fmt.Print(experiment.RenderRows("Deletion-heuristic ablation (§4 alternatives, Q3)", experiment.HeuristicsAblation(cfg)), "\n")
		any = true
	}
	if run("errsweep") {
		fmt.Print(experiment.RenderErrorSweep(experiment.ErrorRateSweep(cfg, nil)), "\n")
		any = true
	}
	if run("sweep") {
		fmt.Print(experiment.RenderSweep(experiment.CleanlinessSweep(cfg, nil)), "\n")
		any = true
	}
	// The overload sweep measures wall-clock admission behaviour under live
	// load, so it only runs when asked for by name, never under -fig all.
	if *fig == "overload" {
		rows := experiment.OverloadSweep(experiment.OverloadOpts{Duration: *overloadDur})
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				fmt.Fprintf(os.Stderr, "encoding overload sweep: %v\n", err)
				os.Exit(1)
			}
		} else {
			fmt.Print(experiment.RenderOverload(rows), "\n")
		}
		any = true
	}
	// The eval benchmark measures wall-clock cold/warm/parallel evaluation,
	// so like the overload sweep it only runs when asked for by name. With
	// -json it records the run into BENCH_eval.json, the repo's evaluation
	// performance trajectory.
	if *fig == "eval" {
		rep := experiment.EvalBench(experiment.EvalBenchOpts{
			Workers:     *parallel,
			Soccer:      cfg.Soccer,
			StoreDir:    scfg.Dir,
			StoreShards: scfg.Shards,
		})
		if *jsonOut {
			f, err := os.Create("BENCH_eval.json")
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating BENCH_eval.json: %v\n", err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "encoding eval benchmark: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "closing BENCH_eval.json: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote BENCH_eval.json")
		} else {
			fmt.Print(experiment.RenderEvalBench(rep), "\n")
		}
		any = true
	}
	// The IVM benchmark measures wall-clock per-edit maintenance against cold
	// re-evaluation, so like eval it only runs when asked for by name. With
	// -json it records the run into BENCH_ivm.json, the repo's incremental-
	// maintenance trajectory.
	if *fig == "ivm" {
		rep := experiment.IVMBench(experiment.IVMBenchOpts{
			Edits:  *ivmEdits,
			Seed:   int64(*seeds),
			Soccer: cfg.Soccer,
		})
		if *jsonOut {
			f, err := os.Create("BENCH_ivm.json")
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating BENCH_ivm.json: %v\n", err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "encoding ivm benchmark: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "closing BENCH_ivm.json: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote BENCH_ivm.json")
		} else {
			fmt.Print(experiment.RenderIVMBench(rep), "\n")
		}
		if !rep.Identical {
			fmt.Fprintln(os.Stderr, "ivm benchmark: maintained evaluation diverged from cold re-evaluation")
			os.Exit(1)
		}
		any = true
	}
	// The metamorphic sweep drives seeded random SQL/Datalog workloads through
	// the full equivalence-oracle battery (internal/metamorph). It exits
	// nonzero on any divergence, with the shrunk reproduction in the report —
	// CI runs it full-width as the frontend/eval-stack gate.
	if *fig == "metamorph" {
		rec := obs.New()
		metamorph.Instrument(rec)
		rep, err := metamorph.Run(metamorph.Options{Seeds: *metamorphSeeds, KeepGoing: true})
		metamorph.Instrument(nil)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if encErr := enc.Encode(rep); encErr != nil {
				fmt.Fprintf(os.Stderr, "encoding metamorph report: %v\n", encErr)
				os.Exit(1)
			}
		} else {
			fmt.Print(rep.Render())
			fmt.Printf("counters: workloads=%d divergences=%d\n",
				rec.Snapshot().Counters[metamorph.MetricWorkloads],
				rec.Snapshot().Counters[metamorph.MetricDivergences])
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "metamorphic sweep: %v\n", err)
			os.Exit(1)
		}
		any = true
	}
	// The cluster soak drives thousands of submissions through a 3-replica
	// in-process cluster under a kill/restart chaos loop with a 30%-faulty
	// crowd, then audits every journal for exactly-once execution. It is a
	// wall-clock robustness exercise, so like overload it only runs by name.
	if *fig == "cluster" {
		rep, err := cluster.RunSoak(cluster.SoakOptions{
			Seed:        int64(*seeds),
			Submissions: *clusterSubs,
			KillCycles:  *clusterKills,
			FaultRate:   0.3,
			Timeout:     10 * time.Minute,
			Logf: func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster soak: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "encoding cluster soak: %v\n", err)
				os.Exit(1)
			}
		} else {
			fmt.Printf("cluster soak: %d submissions (%d acked, %d shed), %d kills\n",
				rep.Submissions, rep.Acked, rep.Unacked, rep.Kills)
			fmt.Printf("  takeovers %d (%d jobs adopted), answers replayed %d, boot fences %d, full syncs %d, forwarded %d\n",
				rep.Takeovers, rep.TakeoverJobs, rep.Replayed, rep.BootHandoffs, rep.FullSyncs, rep.Forwarded)
			fmt.Printf("  terminal states: %v\n", rep.States)
			fmt.Println("  exactly-once journal audit: PASS")
		}
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 3a..3f, 4, dbgroup, sweep, errsweep, heuristics, overload, eval, ivm, cluster, metamorph, all)\n", *fig)
		os.Exit(2)
	}
}
