package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/dataset"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/experiment"
	"repro/internal/hitting"
	"repro/internal/noise"
	"repro/internal/split"
	"repro/internal/sqlfe"
	"repro/internal/view"
)

// benchCfg is a reduced experiment configuration so a full -bench=. run
// completes in minutes: a quarter-size Soccer database, one seed, and two
// injected errors per query. The table shapes (who wins, growth trends) match
// the full qocobench runs recorded in EXPERIMENTS.md.
func benchCfg() experiment.Config {
	return experiment.Config{
		Seeds:          []int64{1},
		Soccer:         dataset.SoccerOpts{Tournaments: 6},
		WrongAnswers:   2,
		MissingAnswers: 2,
	}
}

// BenchmarkFig3aDeletionQueries regenerates Figure 3a: the deletion
// experiment over queries Q1-Q3 with QOCO, QOCO− and Random.
func BenchmarkFig3aDeletionQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig3a(benchCfg())
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3bInsertionQueries regenerates Figure 3b: the insertion
// experiment over queries Q3-Q5 with Provenance, Min-Cut and Random splits.
func BenchmarkFig3bInsertionQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig3b(benchCfg())
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3cMixedQueries regenerates Figure 3c: the mixed experiment over
// queries Q1-Q3.
func BenchmarkFig3cMixedQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig3c(benchCfg())
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3dDeletionNoise regenerates Figure 3d: deletion on Q3 with
// 2/5/10 wrong answers.
func BenchmarkFig3dDeletionNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig3d(benchCfg())
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3eInsertionNoise regenerates Figure 3e: insertion on Q3 with
// 2/5/10 missing answers.
func BenchmarkFig3eInsertionNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig3e(benchCfg())
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3fQuestionTypes regenerates Figure 3f: the question-type mix of
// the Mixed algorithm on Q3.
func BenchmarkFig3fQuestionTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig3f(benchCfg())
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig4ImperfectExperts regenerates Figure 4: the majority-of-3
// imperfect-expert experiment on Q2 and Q3.
func BenchmarkFig4ImperfectExperts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig4(benchCfg())
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkDBGroupShowcase regenerates the §7.1 DBGroup report cleaning.
func BenchmarkDBGroupShowcase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.DBGroupShowcase(int64(i + 1))
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkSelectQuestionDeletion measures the time to select the next
// deletion question (witness enumeration + most-frequent pick) on the
// full-scale Soccer database — the quantity §7 reports as "not more than one
// or two seconds" on the paper's 2015 prototype.
func BenchmarkSelectQuestionDeletion(b *testing.B) {
	dg := dataset.Soccer(dataset.SoccerOpts{})
	d := dg.Clone()
	q := dataset.SoccerQ3()
	rng := rand.New(rand.NewSource(1))
	noise.InjectWrong(d, dg, q, 5, rng)
	var wrong db.Tuple
	for _, t := range eval.Result(q, d) {
		if !eval.AnswerHolds(q, dg, t) {
			wrong = t
			break
		}
	}
	if wrong == nil {
		b.Fatal("no wrong answer injected")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := eval.Witnesses(q, d, wrong)
		ss := hitting.NewSetSystem()
		for _, w := range ws {
			keys := make([]string, len(w))
			for j, f := range w {
				keys[j] = f.Key()
			}
			ss.Add(keys)
		}
		if ss.MostFrequent(nil) == "" {
			b.Fatal("no candidate question")
		}
	}
}

// BenchmarkEvalIndexed and BenchmarkEvalNaive are the evaluator ablation: the
// index-nested-loop evaluator versus the unoptimized reference on the same
// query and database.
func BenchmarkEvalIndexed(b *testing.B) {
	d := dataset.Soccer(dataset.SoccerOpts{Tournaments: 6})
	q := dataset.SoccerQ1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Result(q, d)
	}
}

func BenchmarkEvalNaive(b *testing.B) {
	d := dataset.Soccer(dataset.SoccerOpts{Tournaments: 2})
	q := dataset.SoccerQ1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.NaiveResult(q, d)
	}
}

// BenchmarkEvalColdSerial, BenchmarkEvalWarmCache and BenchmarkEvalParallel
// are the evaluation trajectory benchmarks (the series BENCH_eval.json
// records): cache-bypassed serial evaluation of the Fig3 workload queries on
// the full-scale Soccer database, re-evaluation of the unchanged database
// through the generation-stamped cache, and cache-bypassed evaluation with
// the top-level scan partitioned across workers. CI runs them at
// -benchtime=1x as a smoke test; compare cold vs warm locally with
// -bench='BenchmarkEval(ColdSerial|WarmCache)'.
func BenchmarkEvalColdSerial(b *testing.B) {
	d := dataset.Soccer(dataset.SoccerOpts{})
	for i, q := range dataset.SoccerQueries() {
		b.Run(fmt.Sprintf("Q%d", i+1), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if len(eval.Result(q, d, eval.NoCache())) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

func BenchmarkEvalWarmCache(b *testing.B) {
	d := dataset.Soccer(dataset.SoccerOpts{})
	for i, q := range dataset.SoccerQueries() {
		b.Run(fmt.Sprintf("Q%d", i+1), func(b *testing.B) {
			eval.Result(q, d) // prime the cache for this (query, generation)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if len(eval.Result(q, d)) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

func BenchmarkEvalParallel(b *testing.B) {
	d := dataset.Soccer(dataset.SoccerOpts{})
	queries := dataset.SoccerQueries()
	for _, workers := range []int{1, 4} {
		for i, q := range queries {
			b.Run(fmt.Sprintf("Q%d/workers=%d", i+1, workers), func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					if len(eval.Result(q, d, eval.NoCache(), eval.Parallel(workers))) == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkSplitStrategies times one split decision per strategy on the
// embedded Pirlo query (the Algorithm 2 hot path).
func BenchmarkSplitStrategies(b *testing.B) {
	d, _ := dataset.Figure1()
	qt, err := dataset.IntroQ2().Embed(db.Tuple{"Andrea Pirlo"})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []split.Strategy{split.Provenance{}, split.MinCut{}} {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, ok := s.Split(qt, d); !ok {
					b.Fatal("split failed")
				}
			}
		})
	}
}

// BenchmarkCompositeAblation compares Algorithm 1 with single-tuple questions
// against the §9 composite-question extension (3 tuples per question).
func BenchmarkCompositeAblation(b *testing.B) {
	for _, size := range []int{1, 3} {
		name := "single"
		if size > 1 {
			name = "composite3"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, dg := dataset.Figure1()
				cl := core.New(d, crowd.NewPerfect(dg), core.Config{
					CompositeSize: size, RNG: rand.New(rand.NewSource(int64(i))),
				})
				if _, err := cl.RemoveWrongAnswer(context.Background(), dataset.IntroQ1(), db.Tuple{"ESP"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCleanFigure1 times a full Algorithm 3 run on the paper's running
// example, reporting the Report.Timings phase breakdown as custom metrics.
func BenchmarkCleanFigure1(b *testing.B) {
	var total core.Timings
	for i := 0; i < b.N; i++ {
		d, dg := dataset.Figure1()
		cl := core.New(d, crowd.NewPerfect(dg), core.Config{RNG: rand.New(rand.NewSource(1))})
		rep, err := cl.Clean(context.Background(), dataset.IntroQ1())
		if err != nil {
			b.Fatal(err)
		}
		total.Add(rep.Timings)
	}
	n := float64(b.N)
	b.ReportMetric(float64(total.Verify)/n, "verify-ns/op")
	b.ReportMetric(float64(total.Delete)/n, "delete-ns/op")
	b.ReportMetric(float64(total.Insert)/n, "insert-ns/op")
}

// BenchmarkCleanlinessSweep regenerates the data-cleanliness sweep (§7.2's
// 60%-95% knob) at two levels.
func BenchmarkCleanlinessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.CleanlinessSweep(benchCfg(), []float64{0.80, 0.95})
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkSQLTranslate measures the SQL front-end lowering a 3-way join.
func BenchmarkSQLTranslate(b *testing.B) {
	s := dataset.WorldCupSchema()
	const q = `SELECT g1.winner FROM Games g1, Games g2, Teams t
		WHERE g1.winner = g2.winner AND t.name = g1.winner
		AND g1.stage = 'Final' AND g2.stage = 'Final'
		AND t.continent = 'EU' AND g1.date <> g2.date`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlfe.Parse(s, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewIncrementalVsRefresh is the materialized-view ablation: one
// incremental edit application versus a full recomputation.
func BenchmarkViewIncrementalVsRefresh(b *testing.B) {
	d := dataset.Soccer(dataset.SoccerOpts{Tournaments: 6})
	q := dataset.SoccerQ1()
	fact := db.NewFact("Games", "99.99.99", "POR", "HUN", "Final", "2:1")
	b.Run("incremental", func(b *testing.B) {
		v := view.New("v", q, d)
		for i := 0; i < b.N; i++ {
			d.InsertFact(fact)
			v.Apply(d, db.Insertion(fact))
			d.DeleteFact(fact)
			v.Apply(d, db.Deletion(fact))
		}
	})
	b.Run("refresh", func(b *testing.B) {
		v := view.New("v", q, d)
		for i := 0; i < b.N; i++ {
			d.InsertFact(fact)
			v.Refresh(d)
			d.DeleteFact(fact)
			v.Refresh(d)
		}
	})
}

// BenchmarkParallelVsSerialVerification measures the wall-clock effect of the
// §6.2 parallel mode under simulated crowd latency: answer verifications of a
// round are posed concurrently, so a round costs one crowd latency instead of
// one per answer.
func BenchmarkParallelVsSerialVerification(b *testing.B) {
	const latency = 2 * time.Millisecond
	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, dg := dataset.Figure1()
				oracle := crowd.Delayed{Oracle: crowd.NewPerfect(dg), Delay: latency}
				cl := core.New(d, oracle, core.Config{
					Parallel: parallel, RNG: rand.New(rand.NewSource(1)),
				})
				if _, err := cl.Clean(context.Background(), dataset.IntroQ1()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
